// Package wire defines the message vocabulary and binary codec for the
// paper's protocols.
//
// Every protocol in Sections 3-5 exchanges only a handful of message
// shapes: vectors of group elements (encrypted sets, reordered
// lexicographically), vectors of element pairs ⟨y, f_eS(y)⟩, vectors of
// element triples ⟨y, f_eS(y), f_e'S(y)⟩, and vectors of
// ⟨element, opaque-ciphertext⟩ pairs carrying the encrypted ext(v)
// payloads of the equijoin.  A session-opening header pins down the
// protocol, the group, and the announced set size (the paper's permitted
// additional information I = {|V_S|, |V_R|}).
//
// The encoding is deterministic and fixed-width: each group element
// occupies exactly ElementLen bytes big-endian, so a message's byte count
// is an exact function of the counts the paper's Section 6.1
// communication analysis predicts.  Tests rely on this to verify the
// k-bit-per-codeword accounting literally.
//
// The authoritative byte-level layout of every message family —
// handshake, protocol frames, the streaming StreamBegin/Chunk/ExtChunk/
// End family, and error/saturation rejects — is written out field by
// field in DESIGN.md Section 10 ("Wire-format reference"); the codec in
// this package is its implementation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"minshare/internal/group"
)

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds.
const (
	KindInvalid  Kind = iota
	KindHeader        // session header: protocol, group digest, set size
	KindElements      // vector of group elements
	KindPairs         // vector of ⟨a, b⟩ element pairs
	KindTriples       // vector of ⟨a, b, c⟩ element triples
	KindExtPairs      // vector of ⟨element, ciphertext⟩ pairs
	KindError         // fatal peer error
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindHeader:
		return "header"
	case KindElements:
		return "elements"
	case KindPairs:
		return "pairs"
	case KindTriples:
		return "triples"
	case KindExtPairs:
		return "extpairs"
	case KindError:
		return "error"
	case KindStreamBegin:
		return "stream-begin"
	case KindStreamChunk:
		return "stream-chunk"
	case KindStreamExtChunk:
		return "stream-ext-chunk"
	case KindStreamEnd:
		return "stream-end"
	case KindSubscribe:
		return "subscribe"
	case KindSubUpdate:
		return "sub-update"
	case KindSubAck:
		return "sub-ack"
	case KindSubEnd:
		return "sub-end"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Protocol identifies which of the paper's protocols a session runs.
type Protocol uint8

// Protocols, in paper order.
const (
	ProtoInvalid          Protocol = iota
	ProtoIntersection              // Section 3.3
	ProtoEquijoin                  // Section 4.3
	ProtoIntersectionSize          // Section 5.1.1
	ProtoEquijoinSize              // Section 5.2
	ProtoNaiveHash                 // Section 3.1 (insecure baseline)
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtoIntersection:
		return "intersection"
	case ProtoEquijoin:
		return "equijoin"
	case ProtoIntersectionSize:
		return "intersection-size"
	case ProtoEquijoinSize:
		return "equijoin-size"
	case ProtoNaiveHash:
		return "naive-hash"
	default:
		return fmt.Sprintf("protocol(%d)", uint8(p))
	}
}

// Codec limits and errors.
var (
	// ErrTruncated reports a message shorter than its declared contents.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrTrailing reports unexpected bytes after a complete message.
	ErrTrailing = errors.New("wire: trailing garbage")
	// ErrBadKind reports an unknown message kind byte.
	ErrBadKind = errors.New("wire: unknown message kind")
	// ErrTooLarge reports a declared count above MaxVectorLen.
	ErrTooLarge = errors.New("wire: vector too large")
	// ErrKindMismatch reports receiving a different kind than expected.
	ErrKindMismatch = errors.New("wire: unexpected message kind")
	// ErrBadShards reports a sharded header layout whose shard byte is 0
	// or 1 — values the unsharded encodings already own, so an explicit
	// byte would alias two distinct wire forms.
	ErrBadShards = errors.New("wire: shard byte in sharded header must be > 1")
)

// MaxVectorLen bounds declared element counts so that a corrupt or
// malicious length prefix cannot trigger a huge allocation.
const MaxVectorLen = 1 << 24

// Encoded-size constants.  The codec is deterministic and fixed-width,
// so a message's payload size is an exact affine function of its element
// count; the cost model (internal/costmodel) and the experiment harness
// use these to translate the paper's Section 6.1 bit formulas — which
// count only the k-bit codewords — into exact frame payload sizes.
const (
	// ShardEncodedHeaderLen is the encoded size of a Header that
	// announces shard-parallel execution (Shards > 1): the backend-
	// announcing layout plus one trailing shard-count byte.  A sharded
	// header always carries the backend byte — even for the default
	// safe-prime backend — so the decoder can tell the two trailing-byte
	// layouts apart by length alone; see Header.Shards.
	ShardEncodedHeaderLen = BackendEncodedHeaderLen + 1
	// BackendEncodedHeaderLen is the encoded size of a Header that
	// announces a non-default group backend: EncodedHeaderLen plus one
	// trailing backend-code byte.  Headers for the default safe-prime
	// backend (code 0) omit the byte entirely, so a safe-prime session's
	// handshake remains byte-identical to every earlier release; see
	// Header.Backend.
	BackendEncodedHeaderLen = EncodedHeaderLen + 1
	// EncodedHeaderLen is the full encoded size of a Header message:
	// kind(1) + protocol(1) + group bits(4) + group digest(32) +
	// set size(8) + set version(8) + trace id(16) + span id(8).
	EncodedHeaderLen = 1 + 1 + 4 + 32 + 8 + 8 + 16 + 8
	// PreTraceEncodedHeaderLen is the header size before the trace-context
	// fields (TraceID, SpanID) existed.  Decode still accepts it — the
	// missing fields read as zero, which both already define as "untraced"
	// / "no span" — so a mixed-version deployment completes the handshake
	// and simply runs the session untraced.
	PreTraceEncodedHeaderLen = EncodedHeaderLen - 16 - 8
	// LegacyEncodedHeaderLen is the pre-S27 header size, before the
	// set-version field existed.  Decode still accepts it — the missing
	// SetVersion reads as 0, which the field already defines as
	// "unversioned" — so a mixed-version deployment completes the
	// handshake instead of failing with a truncation error.
	LegacyEncodedHeaderLen = PreTraceEncodedHeaderLen - 8
	// VectorOverhead is the fixed cost of any vector message beyond its
	// elements: kind byte(1) + element count(4).
	VectorOverhead = 1 + 4
	// ExtLenOverhead is the per-entry length prefix of an ExtPairs
	// ciphertext.
	ExtLenOverhead = 4
)

// HeaderLen returns the encoded header size a session negotiating the
// given backend code puts on the wire: the legacy EncodedHeaderLen for
// the default safe-prime backend, BackendEncodedHeaderLen (one extra
// code byte) for every other backend.
func HeaderLen(c group.Code) int64 {
	if c != 0 {
		return BackendEncodedHeaderLen
	}
	return EncodedHeaderLen
}

// ShardedHeaderLen is HeaderLen for a session that also negotiates
// shard-parallel execution: shards > 1 appends the shard-count byte
// (and, with it, always the backend byte), while shards <= 1 leaves the
// header exactly as HeaderLen describes — the k=1 byte-identity
// guarantee.
func ShardedHeaderLen(c group.Code, shards int) int64 {
	if shards > 1 {
		return ShardEncodedHeaderLen
	}
	return HeaderLen(c)
}

// Message is any protocol message.
type Message interface {
	Kind() Kind
}

// Header opens a session in both directions.
type Header struct {
	Protocol    Protocol
	GroupBits   uint32
	GroupDigest [32]byte // SHA-256 of the modulus bytes
	SetSize     uint64   // announced |V| — part of the revealed info I
	// SetVersion is the announcing party's monotonic data version
	// (reldb.Table.Version for a served table; 0 when unversioned).  A
	// peer that cached results or encrypted state from an earlier
	// session can compare versions to detect a stale counterpart.
	SetVersion uint64
	// TraceID is the distributed-trace identity for this protocol run.
	// The session initiator mints it; the responder adopts it and echoes
	// it back, so both endpoints' span trees stitch into one trace.  All
	// zeros means "untraced" (an uninstrumented or pre-trace peer).
	TraceID [16]byte
	// SpanID is the announcing party's root span identity, which becomes
	// the parent of the adopting peer's root span.  Zero when untraced.
	SpanID uint64
	// Backend is the announced commutative-encryption backend
	// (group.CodeQR or group.CodeEC25519).  The wire encoding is
	// backwards compatible by construction: the safe-prime backend is
	// code 0 and is encoded by OMITTING the field, so safe-prime headers
	// are byte-identical to pre-backend releases, and a legacy header's
	// absent field decodes as 0 = safe prime — exactly what a legacy
	// peer runs.  A non-zero code appends one byte, which a legacy
	// decoder rejects as a length error: a mixed-backend pairing fails
	// loudly at the handshake instead of exchanging cross-group garbage.
	Backend group.Code
	// Shards is the announced shard-parallel fan-out k: the session runs
	// as k independent sub-protocols over one multiplexed transport,
	// partitioned by hash prefix (see core.Config.Shards).  Zero and one
	// both mean "unsharded" and are encoded by OMITTING the field — and,
	// with it, nothing changes in the header at all — so an unsharded
	// session is byte-identical to every earlier release.  A value > 1
	// appends one trailing byte after the backend byte (which is then
	// always present, even for the default backend, keeping the layouts
	// distinguishable by length); a legacy decoder rejects the longer
	// header as a length error, so a sharded initiator and a pre-shard
	// peer fail loudly at the handshake rather than deadlocking over a
	// half-multiplexed connection.
	Shards uint8
}

// Kind implements Message.
func (Header) Kind() Kind { return KindHeader }

// Elements is a vector of group elements.
type Elements struct {
	Elems []*big.Int
}

// Kind implements Message.
func (Elements) Kind() Kind { return KindElements }

// Pairs is a vector of element pairs ⟨A[i], B[i]⟩.
type Pairs struct {
	A, B []*big.Int
}

// Kind implements Message.
func (Pairs) Kind() Kind { return KindPairs }

// Triples is a vector of element triples ⟨A[i], B[i], C[i]⟩.
type Triples struct {
	A, B, C []*big.Int
}

// Kind implements Message.
func (Triples) Kind() Kind { return KindTriples }

// ExtPairs is a vector of ⟨element, ciphertext⟩ pairs: the equijoin's
// ⟨f_eS(h(v)), K(κ(v), ext(v))⟩ messages.
type ExtPairs struct {
	Elem []*big.Int
	Ext  [][]byte
}

// Kind implements Message.
func (ExtPairs) Kind() Kind { return KindExtPairs }

// ErrorMsg carries a fatal error to the peer before closing.
type ErrorMsg struct {
	Text string
}

// Kind implements Message.
func (ErrorMsg) Kind() Kind { return KindError }

// GroupDigest derives the header digest identifying a backend's concrete
// group parameters.  For the safe-prime backend this is the SHA-256 of
// the modulus bytes, unchanged since the first release.
func GroupDigest(b group.Backend) [32]byte {
	return b.ParamDigest()
}

// Codec encodes and decodes messages for a fixed group.  The element
// width is pinned at construction so both peers agree byte-for-byte.
type Codec struct {
	elemLen int
}

// NewCodec returns a codec whose group elements occupy b.ElementLen()
// bytes each.
func NewCodec(b group.Backend) *Codec {
	return &Codec{elemLen: b.ElementLen()}
}

// ElemLen returns the fixed element width in bytes (k/8 in the paper's
// communication formulas).
func (c *Codec) ElemLen() int { return c.elemLen }

func (c *Codec) putElem(buf []byte, x *big.Int) []byte {
	b := x.Bytes()
	pad := c.elemLen - len(b)
	if pad < 0 {
		// Element wider than the group modulus: caller bug.
		panic(fmt.Sprintf("wire: element of %d bytes exceeds width %d", len(b), c.elemLen))
	}
	buf = append(buf, make([]byte, pad)...)
	return append(buf, b...)
}

func (c *Codec) getElem(buf []byte) (*big.Int, []byte, error) {
	if len(buf) < c.elemLen {
		return nil, nil, ErrTruncated
	}
	return new(big.Int).SetBytes(buf[:c.elemLen]), buf[c.elemLen:], nil
}

func putCount(buf []byte, n int) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(n))
	return append(buf, b[:]...)
}

func getCount(buf []byte) (int, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, ErrTruncated
	}
	n := binary.BigEndian.Uint32(buf)
	if n > MaxVectorLen {
		return 0, nil, fmt.Errorf("%w: %d elements", ErrTooLarge, n)
	}
	return int(n), buf[4:], nil
}

// Encode serializes a message as kind byte + body.
func (c *Codec) Encode(m Message) ([]byte, error) {
	buf := []byte{byte(m.Kind())}
	switch v := m.(type) {
	case Header:
		buf = append(buf, byte(v.Protocol))
		var b4 [4]byte
		binary.BigEndian.PutUint32(b4[:], v.GroupBits)
		buf = append(buf, b4[:]...)
		buf = append(buf, v.GroupDigest[:]...)
		var b8 [8]byte
		binary.BigEndian.PutUint64(b8[:], v.SetSize)
		buf = append(buf, b8[:]...)
		binary.BigEndian.PutUint64(b8[:], v.SetVersion)
		buf = append(buf, b8[:]...)
		buf = append(buf, v.TraceID[:]...)
		binary.BigEndian.PutUint64(b8[:], v.SpanID)
		buf = append(buf, b8[:]...)
		// The backend byte is appended only for non-default backends,
		// keeping safe-prime headers byte-identical to every earlier
		// release (see Header.Backend).  A sharded header (Shards > 1)
		// always carries it — the shard byte's position is defined
		// relative to a present backend byte — followed by the shard
		// count; Shards <= 1 adds nothing (see Header.Shards).
		if v.Backend != 0 || v.Shards > 1 {
			buf = append(buf, byte(v.Backend))
		}
		if v.Shards > 1 {
			buf = append(buf, v.Shards)
		}
	case Elements:
		buf = putCount(buf, len(v.Elems))
		for _, e := range v.Elems {
			buf = c.putElem(buf, e)
		}
	case Pairs:
		if len(v.A) != len(v.B) {
			return nil, fmt.Errorf("wire: pair vector length mismatch %d != %d", len(v.A), len(v.B))
		}
		buf = putCount(buf, len(v.A))
		for i := range v.A {
			buf = c.putElem(buf, v.A[i])
			buf = c.putElem(buf, v.B[i])
		}
	case Triples:
		if len(v.A) != len(v.B) || len(v.B) != len(v.C) {
			return nil, fmt.Errorf("wire: triple vector length mismatch %d/%d/%d", len(v.A), len(v.B), len(v.C))
		}
		buf = putCount(buf, len(v.A))
		for i := range v.A {
			buf = c.putElem(buf, v.A[i])
			buf = c.putElem(buf, v.B[i])
			buf = c.putElem(buf, v.C[i])
		}
	case ExtPairs:
		if len(v.Elem) != len(v.Ext) {
			return nil, fmt.Errorf("wire: extpair vector length mismatch %d != %d", len(v.Elem), len(v.Ext))
		}
		buf = putCount(buf, len(v.Elem))
		for i := range v.Elem {
			buf = c.putElem(buf, v.Elem[i])
			buf = putCount(buf, len(v.Ext[i]))
			buf = append(buf, v.Ext[i]...)
		}
	case ErrorMsg:
		buf = putCount(buf, len(v.Text))
		buf = append(buf, v.Text...)
	case StreamBegin:
		return c.encodeStreamBegin(buf, v)
	case StreamChunk:
		buf = c.encodeStreamChunk(buf, v)
	case StreamExtChunk:
		return c.encodeStreamExtChunk(buf, v)
	case StreamEnd:
		buf = c.encodeStreamEnd(buf, v)
	case Subscribe:
		buf = c.encodeSubscribe(buf, v)
	case SubUpdate:
		return c.encodeSubUpdate(buf, v)
	case SubAck:
		buf = c.encodeSubAck(buf, v)
	case SubEnd:
		return c.encodeSubEnd(buf, v)
	default:
		return nil, fmt.Errorf("wire: cannot encode %T", m)
	}
	return buf, nil
}

// Decode parses a serialized message, rejecting truncation, trailing
// bytes, and oversized counts.
func (c *Codec) Decode(data []byte) (Message, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	kind := Kind(data[0])
	buf := data[1:]
	switch kind {
	case KindHeader:
		// Five accepted layouts, newest first: shard-announcing (backend
		// byte plus a trailing shard-count byte), backend-announcing (one
		// trailing backend-code byte), current (with trace context),
		// pre-trace (with set version only), and legacy pre-S27
		// (neither).  Fields absent from an older layout decode as zero,
		// which each field defines as its "absent" value — for Backend,
		// zero is the safe-prime domain every pre-backend release runs;
		// for Shards, zero is unsharded —
		// so a mixed-version deployment still completes the handshake.
		switch len(buf) {
		case ShardEncodedHeaderLen - 1, BackendEncodedHeaderLen - 1, EncodedHeaderLen - 1, PreTraceEncodedHeaderLen - 1, LegacyEncodedHeaderLen - 1:
		default:
			return nil, fmt.Errorf("%w: header of %d bytes", ErrTruncated, len(buf))
		}
		var h Header
		h.Protocol = Protocol(buf[0])
		h.GroupBits = binary.BigEndian.Uint32(buf[1:5])
		copy(h.GroupDigest[:], buf[5:37])
		h.SetSize = binary.BigEndian.Uint64(buf[37:45])
		if len(buf) >= PreTraceEncodedHeaderLen-1 {
			h.SetVersion = binary.BigEndian.Uint64(buf[45:53])
		}
		if len(buf) >= EncodedHeaderLen-1 {
			copy(h.TraceID[:], buf[53:69])
			h.SpanID = binary.BigEndian.Uint64(buf[69:77])
		}
		if len(buf) >= BackendEncodedHeaderLen-1 {
			h.Backend = group.Code(buf[77])
		}
		if len(buf) == ShardEncodedHeaderLen-1 {
			h.Shards = buf[78]
			if h.Shards <= 1 {
				return nil, fmt.Errorf("%w: got %d", ErrBadShards, h.Shards)
			}
		}
		return h, nil
	case KindElements:
		n, buf, err := getCount(buf)
		if err != nil {
			return nil, err
		}
		v := Elements{Elems: make([]*big.Int, n)}
		for i := 0; i < n; i++ {
			if v.Elems[i], buf, err = c.getElem(buf); err != nil {
				return nil, err
			}
		}
		if err := trailing(buf); err != nil {
			return nil, err
		}
		return v, nil
	case KindPairs:
		n, buf, err := getCount(buf)
		if err != nil {
			return nil, err
		}
		v := Pairs{A: make([]*big.Int, n), B: make([]*big.Int, n)}
		for i := 0; i < n; i++ {
			if v.A[i], buf, err = c.getElem(buf); err != nil {
				return nil, err
			}
			if v.B[i], buf, err = c.getElem(buf); err != nil {
				return nil, err
			}
		}
		if err := trailing(buf); err != nil {
			return nil, err
		}
		return v, nil
	case KindTriples:
		n, buf, err := getCount(buf)
		if err != nil {
			return nil, err
		}
		v := Triples{A: make([]*big.Int, n), B: make([]*big.Int, n), C: make([]*big.Int, n)}
		for i := 0; i < n; i++ {
			if v.A[i], buf, err = c.getElem(buf); err != nil {
				return nil, err
			}
			if v.B[i], buf, err = c.getElem(buf); err != nil {
				return nil, err
			}
			if v.C[i], buf, err = c.getElem(buf); err != nil {
				return nil, err
			}
		}
		if err := trailing(buf); err != nil {
			return nil, err
		}
		return v, nil
	case KindExtPairs:
		n, buf, err := getCount(buf)
		if err != nil {
			return nil, err
		}
		v := ExtPairs{Elem: make([]*big.Int, n), Ext: make([][]byte, n)}
		for i := 0; i < n; i++ {
			if v.Elem[i], buf, err = c.getElem(buf); err != nil {
				return nil, err
			}
			var l int
			if l, buf, err = getCount(buf); err != nil {
				return nil, err
			}
			if len(buf) < l {
				return nil, ErrTruncated
			}
			v.Ext[i] = append([]byte(nil), buf[:l]...)
			buf = buf[l:]
		}
		if err := trailing(buf); err != nil {
			return nil, err
		}
		return v, nil
	case KindError:
		l, buf, err := getCount(buf)
		if err != nil {
			return nil, err
		}
		if len(buf) < l {
			return nil, ErrTruncated
		}
		if err := trailing(buf[l:]); err != nil {
			return nil, err
		}
		return ErrorMsg{Text: string(buf[:l])}, nil
	case KindStreamBegin:
		return c.decodeStreamBegin(buf)
	case KindStreamChunk:
		return c.decodeStreamChunk(buf)
	case KindStreamExtChunk:
		return c.decodeStreamExtChunk(buf)
	case KindStreamEnd:
		return c.decodeStreamEnd(buf)
	case KindSubscribe:
		return c.decodeSubscribe(buf)
	case KindSubUpdate:
		return c.decodeSubUpdate(buf)
	case KindSubAck:
		return c.decodeSubAck(buf)
	case KindSubEnd:
		return c.decodeSubEnd(buf)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, kind)
	}
}

func trailing(buf []byte) error {
	if len(buf) != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(buf))
	}
	return nil
}
