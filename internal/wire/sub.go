package wire

import (
	"encoding/binary"
	"fmt"
	"math/big"
)

// Subscription message family (PR 9).
//
// A standing query turns one protocol run into a session that stays
// open: after the base intersection/equijoin completes, the receiver
// sends Subscribe naming the sender data version its result reflects,
// and the sender pushes one SubUpdate per mutation batch — the churn of
// its encrypted set, already under the session's pinned e_S — which the
// receiver folds into its retained state for O(churn) work.  Each
// update is acknowledged with SubAck; either side ends the subscription
// with SubEnd.  None of these kinds ever appears in a non-subscribed
// session, so the legacy transcripts stay byte-identical.

// Subscription message kinds, continuing the Kind enumeration after the
// stream family (KindStreamEnd = 10).
const (
	// KindSubscribe asks the sender to push encrypted deltas.
	KindSubscribe Kind = iota + 11
	// KindSubUpdate carries one batch of encrypted churn.
	KindSubUpdate
	// KindSubAck confirms an applied update.
	KindSubAck
	// KindSubEnd closes the subscription from either side.
	KindSubEnd
)

// Encoded sizes of the subscription envelope, used by the cost model to
// account for standing-query traffic exactly.
const (
	// EncodedSubscribeLen is the full encoded size of a Subscribe:
	// kind(1) + from-version(8).
	EncodedSubscribeLen = 1 + 8
	// EncodedSubUpdateBaseLen is the encoded size of a SubUpdate before
	// its entries: kind(1) + from(8) + to(8) + ext flag(1) + upsert
	// count(4) + delete count(4).  Each upsert adds one element codeword
	// (plus, with HasExt, ExtLenOverhead and the ciphertext); each
	// delete adds one element codeword.
	EncodedSubUpdateBaseLen = 1 + 8 + 8 + 1 + 4 + 4
	// EncodedSubAckLen is the full encoded size of a SubAck:
	// kind(1) + version(8).
	EncodedSubAckLen = 1 + 8
	// EncodedSubEndLen is the full encoded size of a SubEnd:
	// kind(1) + code(1).
	EncodedSubEndLen = 1 + 1
)

// SubEnd close codes.
const (
	// SubEndServer means the sender is closing: it cannot (or will no
	// longer) serve deltas, and the receiver's result stays valid for
	// the last acknowledged version.
	SubEndServer uint8 = 0
	// SubEndClient means the receiver is done listening.
	SubEndClient uint8 = 1
)

// Subscribe asks the sender to keep the session open and push encrypted
// deltas.  FromVersion is the sender data version the receiver's result
// reflects — the version the first SubUpdate must continue from.
type Subscribe struct {
	FromVersion uint64
}

// Kind implements Message.
func (Subscribe) Kind() Kind { return KindSubscribe }

// SubUpdate carries one batch of encrypted churn spanning sender data
// versions From (exclusive) to To (inclusive).  Upserts holds the
// f_eS(h(v)) of inserted values — and, when HasExt, of updated values
// too, each with its fresh K(κ(v), ext(v)) ciphertext in the aligned
// UpsertExt — sorted; Deleted holds the f_eS(h(v)) of removed values,
// sorted.  The set protocols never send an ext-less update (membership
// did not change), so HasExt distinguishes the equijoin shape.
type SubUpdate struct {
	From, To  uint64
	HasExt    bool
	Upserts   []*big.Int
	UpsertExt [][]byte
	Deleted   []*big.Int
}

// Kind implements Message.
func (SubUpdate) Kind() Kind { return KindSubUpdate }

// SubAck confirms the receiver applied updates through the named sender
// data version.
type SubAck struct {
	Version uint64
}

// Kind implements Message.
func (SubAck) Kind() Kind { return KindSubAck }

// SubEnd closes the subscription; Code says which side ended it and
// why (SubEndServer or SubEndClient).
type SubEnd struct {
	Code uint8
}

// Kind implements Message.
func (SubEnd) Kind() Kind { return KindSubEnd }

func putU64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

func getU64(buf []byte) (uint64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, ErrTruncated
	}
	return binary.BigEndian.Uint64(buf), buf[8:], nil
}

func (c *Codec) encodeSubscribe(buf []byte, v Subscribe) []byte {
	return putU64(buf, v.FromVersion)
}

func (c *Codec) decodeSubscribe(buf []byte) (Message, error) {
	from, buf, err := getU64(buf)
	if err != nil {
		return nil, err
	}
	if err := trailing(buf); err != nil {
		return nil, err
	}
	return Subscribe{FromVersion: from}, nil
}

func (c *Codec) encodeSubUpdate(buf []byte, v SubUpdate) ([]byte, error) {
	if v.HasExt && len(v.UpsertExt) != len(v.Upserts) {
		return nil, fmt.Errorf("wire: sub-update ext mismatch %d != %d", len(v.UpsertExt), len(v.Upserts))
	}
	if !v.HasExt && len(v.UpsertExt) != 0 {
		return nil, fmt.Errorf("wire: sub-update carries %d exts without the ext flag", len(v.UpsertExt))
	}
	buf = putU64(buf, v.From)
	buf = putU64(buf, v.To)
	flag := byte(0)
	if v.HasExt {
		flag = 1
	}
	buf = append(buf, flag)
	buf = putCount(buf, len(v.Upserts))
	for i, e := range v.Upserts {
		buf = c.putElem(buf, e)
		if v.HasExt {
			buf = putCount(buf, len(v.UpsertExt[i]))
			buf = append(buf, v.UpsertExt[i]...)
		}
	}
	buf = putCount(buf, len(v.Deleted))
	for _, e := range v.Deleted {
		buf = c.putElem(buf, e)
	}
	return buf, nil
}

func (c *Codec) decodeSubUpdate(buf []byte) (Message, error) {
	var v SubUpdate
	var err error
	if v.From, buf, err = getU64(buf); err != nil {
		return nil, err
	}
	if v.To, buf, err = getU64(buf); err != nil {
		return nil, err
	}
	if len(buf) < 1 {
		return nil, ErrTruncated
	}
	switch buf[0] {
	case 0:
	case 1:
		v.HasExt = true
	default:
		return nil, fmt.Errorf("wire: sub-update ext flag %d", buf[0])
	}
	buf = buf[1:]
	n, buf, err := getCount(buf)
	if err != nil {
		return nil, err
	}
	v.Upserts = make([]*big.Int, n)
	if v.HasExt {
		v.UpsertExt = make([][]byte, n)
	}
	for i := 0; i < n; i++ {
		if v.Upserts[i], buf, err = c.getElem(buf); err != nil {
			return nil, err
		}
		if v.HasExt {
			var l int
			if l, buf, err = getCount(buf); err != nil {
				return nil, err
			}
			if len(buf) < l {
				return nil, ErrTruncated
			}
			v.UpsertExt[i] = append([]byte(nil), buf[:l]...)
			buf = buf[l:]
		}
	}
	if n, buf, err = getCount(buf); err != nil {
		return nil, err
	}
	v.Deleted = make([]*big.Int, n)
	for i := 0; i < n; i++ {
		if v.Deleted[i], buf, err = c.getElem(buf); err != nil {
			return nil, err
		}
	}
	if err := trailing(buf); err != nil {
		return nil, err
	}
	return v, nil
}

func (c *Codec) encodeSubAck(buf []byte, v SubAck) []byte {
	return putU64(buf, v.Version)
}

func (c *Codec) decodeSubAck(buf []byte) (Message, error) {
	ver, buf, err := getU64(buf)
	if err != nil {
		return nil, err
	}
	if err := trailing(buf); err != nil {
		return nil, err
	}
	return SubAck{Version: ver}, nil
}

func (c *Codec) encodeSubEnd(buf []byte, v SubEnd) ([]byte, error) {
	if v.Code != SubEndServer && v.Code != SubEndClient {
		return nil, fmt.Errorf("wire: sub-end code %d", v.Code)
	}
	return append(buf, v.Code), nil
}

func (c *Codec) decodeSubEnd(buf []byte) (Message, error) {
	if len(buf) < 1 {
		return nil, ErrTruncated
	}
	if buf[0] != SubEndServer && buf[0] != SubEndClient {
		return nil, fmt.Errorf("wire: sub-end code %d", buf[0])
	}
	if err := trailing(buf[1:]); err != nil {
		return nil, err
	}
	return SubEnd{Code: buf[0]}, nil
}
