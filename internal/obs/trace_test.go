package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceIDMintParseRoundTrip(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a.IsZero() || b.IsZero() {
		t.Fatal("minted trace IDs must be nonzero")
	}
	if a == b {
		t.Fatal("two minted trace IDs collided")
	}
	s := a.String()
	if len(s) != 32 || strings.ToLower(s) != s {
		t.Errorf("String() = %q, want 32 lowercase hex digits", s)
	}
	parsed, err := ParseTraceID(s)
	if err != nil || parsed != a {
		t.Errorf("ParseTraceID(%q) = %v, %v; want the original", s, parsed, err)
	}
	// The empty string is the zero ("untraced") identity, not an error.
	zero, err := ParseTraceID("")
	if err != nil || !zero.IsZero() {
		t.Errorf("ParseTraceID(\"\") = %v, %v; want zero, nil", zero, err)
	}
	for _, bad := range []string{"zz", "abcd", strings.Repeat("ab", 17)} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) succeeded, want error", bad)
		}
	}
}

func TestTraceAndSpanIDJSON(t *testing.T) {
	type pair struct {
		T TraceID `json:"t"`
		S SpanID  `json:"s"`
	}
	in := pair{T: NewTraceID(), S: nextSpanID()}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// IDs must serialize as hex strings, not byte arrays / numbers.
	if !strings.Contains(string(data), `"t":"`+in.T.String()+`"`) ||
		!strings.Contains(string(data), `"s":"`+in.S.String()+`"`) {
		t.Fatalf("JSON = %s, want hex-string ids", data)
	}
	var out pair
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

func TestSpanIDsUniqueAndNonzero(t *testing.T) {
	seen := make(map[SpanID]bool)
	for i := 0; i < 1000; i++ {
		id := nextSpanID()
		if id == 0 {
			t.Fatal("nextSpanID minted zero")
		}
		if seen[id] {
			t.Fatalf("nextSpanID repeated %s", id)
		}
		seen[id] = true
	}
}

// TestSessionSpanIdentity: every span in a session carries its own ID,
// its parent's ID, and the session's trace ID appears in the snapshot.
func TestSessionSpanIdentity(t *testing.T) {
	reg := NewRegistry()
	sess := reg.StartSession(SessionInfo{Protocol: "intersection", Role: "receiver"})
	if sess.TraceID().IsZero() {
		t.Fatal("StartSession must mint a trace ID")
	}
	root := sess.Root()
	child := root.StartChild("phase")
	grand := child.StartChild("sub")
	grand.End()
	child.End()
	snap := sess.End(nil)

	if snap.TraceID != sess.TraceID() {
		t.Errorf("snapshot trace = %s, want %s", snap.TraceID, sess.TraceID())
	}
	if snap.RootSpanID != root.ID() || snap.RootSpanID == 0 {
		t.Errorf("root span id = %s, want %s (nonzero)", snap.RootSpanID, root.ID())
	}
	if snap.RootParentID != 0 {
		t.Errorf("initiator root parent = %s, want 0", snap.RootParentID)
	}
	if len(snap.Spans) != 1 {
		t.Fatalf("got %d top-level spans, want 1", len(snap.Spans))
	}
	ph := snap.Spans[0]
	if ph.SpanID != child.ID() || ph.ParentID != root.ID() {
		t.Errorf("phase ids = %s/%s, want %s under %s", ph.SpanID, ph.ParentID, child.ID(), root.ID())
	}
	if len(ph.Children) != 1 || ph.Children[0].ParentID != child.ID() {
		t.Fatalf("grandchild must nest under the phase span: %+v", ph.Children)
	}
}

func TestAdoptRemoteTrace(t *testing.T) {
	reg := NewRegistry()
	sess := reg.StartSession(SessionInfo{Protocol: "intersection", Role: "sender"})
	own := sess.TraceID()

	// A zero trace ID (legacy or untraced peer) is ignored.
	sess.AdoptRemoteTrace(TraceID{}, 99)
	if sess.TraceID() != own || sess.Snapshot().RootParentID != 0 {
		t.Fatal("zero trace ID must be a no-op")
	}

	// The initiator's own echo (same ID) must not rewrite the parent.
	sess.AdoptRemoteTrace(own, 99)
	if sess.Snapshot().RootParentID != 0 {
		t.Fatal("adopting the session's own trace ID must be a no-op")
	}

	// A genuine remote identity re-parents the root.
	remote, parent := NewTraceID(), SpanID(0xfeed)
	sess.AdoptRemoteTrace(remote, parent)
	snap := sess.End(nil)
	if snap.TraceID != remote {
		t.Errorf("adopted trace = %s, want %s", snap.TraceID, remote)
	}
	if snap.RootParentID != parent {
		t.Errorf("adopted root parent = %s, want %s", snap.RootParentID, parent)
	}

	// Nil session: inert.
	var nilSess *Session
	nilSess.AdoptRemoteTrace(remote, parent)
	if !nilSess.TraceID().IsZero() {
		t.Error("nil session must report a zero trace ID")
	}
}

// TestSpanAnnotate: attributes stringify immediately and land in the
// snapshot; the nil span stays inert.
func TestSpanAnnotate(t *testing.T) {
	reg := NewRegistry()
	sess := reg.StartSession(SessionInfo{Protocol: "equijoin", Role: "receiver"})
	sp := sess.Root().StartChild("exchange")
	sp.Annotate("chunks", 17)
	sp.Annotate("outcome", "ok")
	sp.End()
	snap := sess.End(nil)

	attrs := snap.Spans[0].Attrs
	if len(attrs) != 2 || attrs[0] != (SpanAttr{"chunks", "17"}) || attrs[1] != (SpanAttr{"outcome", "ok"}) {
		t.Errorf("attrs = %+v, want chunks=17 outcome=ok", attrs)
	}

	var nilSpan *Span
	nilSpan.Annotate("k", "v") // must not panic
}

// TestPhaseHistogramFedBySpanEnd: the first End of a span records
// exactly one observation into phase/<name>; later Ends do not.
func TestPhaseHistogramFedBySpanEnd(t *testing.T) {
	reg := NewRegistry()
	sess := reg.StartSession(SessionInfo{Protocol: "intersection", Role: "receiver"})
	sp := sess.Root().StartChild("bulk-encrypt")
	sp.End()
	sp.End() // idempotent: must not double-count
	sess.End(nil)

	lat := reg.Latencies().Snapshot()
	if got := lat[LatPhasePrefix+"bulk-encrypt"].Count; got != 1 {
		t.Errorf("phase/bulk-encrypt count = %d, want 1", got)
	}
	// The session root feeds phase/session on End too.
	if got := lat[LatPhasePrefix+"session"].Count; got != 1 {
		t.Errorf("phase/session count = %d, want 1", got)
	}
}
