package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// TraceID identifies one cross-party protocol run: the session initiator
// (party R, who speaks first) mints a TraceID and carries it in the wire
// handshake, the responder adopts it, and both endpoints' span trees can
// then be stitched into a single distributed trace.  The zero TraceID
// means "untraced" and is never minted.
type TraceID [16]byte

// NewTraceID mints a random trace identity.  The 128-bit space makes
// collisions between independently minted traces negligible, so two
// parties never need to coordinate beyond the handshake itself.
func NewTraceID() TraceID {
	var t TraceID
	for {
		if _, err := rand.Read(t[:]); err != nil {
			// crypto/rand never fails on supported platforms; fall back to
			// the span-ID sequence rather than returning a zero ("untraced")
			// identity.
			binary.BigEndian.PutUint64(t[:8], uint64(nextSpanID()))
			binary.BigEndian.PutUint64(t[8:], uint64(nextSpanID()))
		}
		if !t.IsZero() {
			return t
		}
	}
}

// IsZero reports whether t is the zero ("untraced") identity.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the trace ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// MarshalText implements encoding.TextMarshaler so trace IDs appear as
// hex strings in JSON snapshots.
func (t TraceID) MarshalText() ([]byte, error) {
	return []byte(t.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (t *TraceID) UnmarshalText(text []byte) error {
	parsed, err := ParseTraceID(string(text))
	if err != nil {
		return err
	}
	*t = parsed
	return nil
}

// ParseTraceID parses the 32-hex-digit form produced by String.  The
// empty string parses as the zero ("untraced") identity.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if s == "" {
		return t, nil
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return t, fmt.Errorf("obs: parsing trace id %q: %w", s, err)
	}
	if len(b) != len(t) {
		return t, fmt.Errorf("obs: trace id %q is %d bytes, want %d", s, len(b), len(t))
	}
	copy(t[:], b)
	return t, nil
}

// SpanID identifies one span within a trace.  IDs are drawn from a
// process-global sequence seeded randomly at startup, so the two
// endpoints of a protocol run — separate processes with separate seeds —
// mint disjoint ID ranges with overwhelming probability and the merged
// cross-party trace needs no renumbering.  Zero means "no span" (the
// root of a trace has ParentID zero).
type SpanID uint64

// String renders the span ID as 16 lowercase hex digits.
func (s SpanID) String() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(s))
	return hex.EncodeToString(b[:])
}

// MarshalText implements encoding.TextMarshaler so span IDs appear as
// hex strings in JSON snapshots.
func (s SpanID) MarshalText() ([]byte, error) {
	return []byte(s.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *SpanID) UnmarshalText(text []byte) error {
	b, err := hex.DecodeString(string(text))
	if err != nil {
		return fmt.Errorf("obs: parsing span id %q: %w", text, err)
	}
	if len(b) != 8 {
		return fmt.Errorf("obs: span id %q is %d bytes, want 8", text, len(b))
	}
	*s = SpanID(binary.BigEndian.Uint64(b))
	return nil
}

// spanSeq is the process-global span-ID sequence; see SpanID for why it
// is seeded randomly.
var spanSeq atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		spanSeq.Store(binary.BigEndian.Uint64(seed[:]))
	}
}

// nextSpanID mints the next span ID.  Lock-free: one atomic add.
func nextSpanID() SpanID {
	for {
		if id := SpanID(spanSeq.Add(1)); id != 0 {
			return id
		}
	}
}
