package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// WriteText renders a registry snapshot in a flat key-value text form,
// one metric per line, followed by one line per live/recent session.
func WriteText(w io.Writer, snap RegistrySnapshot) {
	fmt.Fprintf(w, "# minshare observability snapshot\n")
	fmt.Fprintf(w, "uptime_seconds %.1f\n", snap.UptimeSeconds)
	fmt.Fprintf(w, "sessions_active %d\n", snap.SessionsActive)
	fmt.Fprintf(w, "sessions_finished %d\n", snap.SessionsFinished)
	fmt.Fprintf(w, "sessions_failed %d\n", snap.SessionsFailed)
	writeCountersText(w, "", snap.Global)
	writeLifecycleText(w, snap.Lifecycle)
	writeCacheText(w, snap.Cache)
	if len(snap.Active) > 0 {
		fmt.Fprintf(w, "# active sessions\n")
		ordered := append([]SessionSnapshot(nil), snap.Active...)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
		for _, s := range ordered {
			writeSessionText(w, s)
		}
	}
	if len(snap.Recent) > 0 {
		fmt.Fprintf(w, "# recent sessions\n")
		for _, s := range snap.Recent {
			writeSessionText(w, s)
		}
	}
}

func writeCountersText(w io.Writer, prefix string, c CounterSnapshot) {
	fmt.Fprintf(w, "%smodexp_encrypts %d\n", prefix, c.ModExpEncrypts)
	fmt.Fprintf(w, "%smodexp_decrypts %d\n", prefix, c.ModExpDecrypts)
	fmt.Fprintf(w, "%smodexp_total %d\n", prefix, c.ModExps())
	fmt.Fprintf(w, "%skeygens %d\n", prefix, c.KeyGens)
	fmt.Fprintf(w, "%soracle_hashes %d\n", prefix, c.OracleHashes)
	fmt.Fprintf(w, "%spayload_encrypts %d\n", prefix, c.PayloadEncrypts)
	fmt.Fprintf(w, "%spayload_decrypts %d\n", prefix, c.PayloadDecrypts)
	fmt.Fprintf(w, "%sframes_sent %d\n", prefix, c.FramesSent)
	fmt.Fprintf(w, "%sframes_recv %d\n", prefix, c.FramesRecv)
	fmt.Fprintf(w, "%spayload_bytes_sent %d\n", prefix, c.PayloadBytesSent)
	fmt.Fprintf(w, "%spayload_bytes_recv %d\n", prefix, c.PayloadBytesRecv)
	fmt.Fprintf(w, "%swire_bytes_sent %d\n", prefix, c.WireBytesSent)
	fmt.Fprintf(w, "%swire_bytes_recv %d\n", prefix, c.WireBytesRecv)
}

func writeLifecycleText(w io.Writer, l LifecycleSnapshot) {
	fmt.Fprintf(w, "accept_retries %d\n", l.AcceptRetries)
	fmt.Fprintf(w, "saturation_rejects %d\n", l.SaturationRejects)
	fmt.Fprintf(w, "handshake_timeouts %d\n", l.HandshakeTimeouts)
	fmt.Fprintf(w, "idle_timeouts %d\n", l.IdleTimeouts)
	fmt.Fprintf(w, "session_timeouts %d\n", l.SessionTimeouts)
	fmt.Fprintf(w, "drains %d\n", l.Drains)
	fmt.Fprintf(w, "drain_forced %d\n", l.DrainForced)
	fmt.Fprintf(w, "drain_cancelled_sessions %d\n", l.DrainCancelled)
	fmt.Fprintf(w, "client_retries %d\n", l.ClientRetries)
}

func writeCacheText(w io.Writer, c CacheSnapshot) {
	fmt.Fprintf(w, "cache_hits %d\n", c.Hits)
	fmt.Fprintf(w, "cache_misses %d\n", c.Misses)
	fmt.Fprintf(w, "cache_evictions %d\n", c.Evictions)
	fmt.Fprintf(w, "cache_rotations %d\n", c.Rotations)
}

func writeSessionText(w io.Writer, s SessionSnapshot) {
	outcome := s.Outcome
	if outcome == "" {
		outcome = "running"
	}
	fmt.Fprintf(w, "session id=%d protocol=%s peer=%q role=%s local_set=%d peer_set=%d duration=%s modexp=%d oracle_hashes=%d wire_bytes=%d outcome=%q",
		s.ID, s.Info.Protocol, s.Info.Peer, s.Info.Role,
		s.Info.LocalSetSize, s.Info.PeerSetSize,
		s.Duration.Round(time.Microsecond),
		s.Counters.ModExps(), s.Counters.OracleHashes,
		s.Counters.TotalWireBytes(), outcome)
	if len(s.Spans) > 0 {
		fmt.Fprintf(w, " spans=%q", RenderSpans(s.Spans))
	}
	fmt.Fprintln(w)
}

// Handler serves the registry snapshot: text by default, JSON when the
// request asks for it (?format=json or an Accept header preferring
// application/json).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if wantJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteText(w, snap)
	})
}

func wantJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}

// DebugMux returns the opt-in introspection mux served by psiserver's
// -debug-addr: /metrics (this registry), /debug/vars (expvar) and
// /debug/pprof/* (runtime profiling).
func (r *Registry) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// publishMu serializes expvar publication checks (expvar.Publish panics
// on duplicate names, and expvar offers no unpublish for tests).
var publishMu sync.Mutex

// PublishExpvar exposes the registry snapshot as an expvar under name.
// Safe to call more than once; later calls for an existing name are
// no-ops.
func (r *Registry) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
