package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WriteText renders a registry snapshot in a flat key-value text form,
// one metric per line, followed by one line per live/recent session.
func WriteText(w io.Writer, snap RegistrySnapshot) {
	fmt.Fprintf(w, "# minshare observability snapshot\n")
	fmt.Fprintf(w, "uptime_seconds %.1f\n", snap.UptimeSeconds)
	fmt.Fprintf(w, "sessions_active %d\n", snap.SessionsActive)
	fmt.Fprintf(w, "sessions_finished %d\n", snap.SessionsFinished)
	fmt.Fprintf(w, "sessions_failed %d\n", snap.SessionsFailed)
	writeCountersText(w, "", snap.Global)
	writeLifecycleText(w, snap.Lifecycle)
	writeCacheText(w, snap.Cache)
	writeLatenciesText(w, snap.Latencies)
	if len(snap.Active) > 0 {
		fmt.Fprintf(w, "# active sessions\n")
		ordered := append([]SessionSnapshot(nil), snap.Active...)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
		for _, s := range ordered {
			writeSessionText(w, s)
		}
	}
	if len(snap.Recent) > 0 {
		fmt.Fprintf(w, "# recent sessions\n")
		for _, s := range snap.Recent {
			writeSessionText(w, s)
		}
	}
}

func writeCountersText(w io.Writer, prefix string, c CounterSnapshot) {
	fmt.Fprintf(w, "%smodexp_encrypts %d\n", prefix, c.ModExpEncrypts)
	fmt.Fprintf(w, "%smodexp_decrypts %d\n", prefix, c.ModExpDecrypts)
	fmt.Fprintf(w, "%smodexp_total %d\n", prefix, c.ModExps())
	fmt.Fprintf(w, "%skeygens %d\n", prefix, c.KeyGens)
	fmt.Fprintf(w, "%soracle_hashes %d\n", prefix, c.OracleHashes)
	fmt.Fprintf(w, "%spayload_encrypts %d\n", prefix, c.PayloadEncrypts)
	fmt.Fprintf(w, "%spayload_decrypts %d\n", prefix, c.PayloadDecrypts)
	fmt.Fprintf(w, "%sframes_sent %d\n", prefix, c.FramesSent)
	fmt.Fprintf(w, "%sframes_recv %d\n", prefix, c.FramesRecv)
	fmt.Fprintf(w, "%spayload_bytes_sent %d\n", prefix, c.PayloadBytesSent)
	fmt.Fprintf(w, "%spayload_bytes_recv %d\n", prefix, c.PayloadBytesRecv)
	fmt.Fprintf(w, "%swire_bytes_sent %d\n", prefix, c.WireBytesSent)
	fmt.Fprintf(w, "%swire_bytes_recv %d\n", prefix, c.WireBytesRecv)
}

func writeLifecycleText(w io.Writer, l LifecycleSnapshot) {
	fmt.Fprintf(w, "accept_retries %d\n", l.AcceptRetries)
	fmt.Fprintf(w, "saturation_rejects %d\n", l.SaturationRejects)
	fmt.Fprintf(w, "handshake_timeouts %d\n", l.HandshakeTimeouts)
	fmt.Fprintf(w, "idle_timeouts %d\n", l.IdleTimeouts)
	fmt.Fprintf(w, "session_timeouts %d\n", l.SessionTimeouts)
	fmt.Fprintf(w, "drains %d\n", l.Drains)
	fmt.Fprintf(w, "drain_forced %d\n", l.DrainForced)
	fmt.Fprintf(w, "drain_cancelled_sessions %d\n", l.DrainCancelled)
	fmt.Fprintf(w, "client_retries %d\n", l.ClientRetries)
}

func writeCacheText(w io.Writer, c CacheSnapshot) {
	fmt.Fprintf(w, "cache_hits %d\n", c.Hits)
	fmt.Fprintf(w, "cache_misses %d\n", c.Misses)
	fmt.Fprintf(w, "cache_evictions %d\n", c.Evictions)
	fmt.Fprintf(w, "cache_rotations %d\n", c.Rotations)
}

func writeLatenciesText(w io.Writer, lat map[string]HistogramSnapshot) {
	if len(lat) == 0 {
		return
	}
	fmt.Fprintf(w, "# latency histograms\n")
	names := make([]string, 0, len(lat))
	for name := range lat {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := lat[name]
		fmt.Fprintf(w, "latency name=%q count=%d mean=%s p50=%s p90=%s p99=%s max=%s\n",
			name, h.Count, h.Mean, h.P50, h.P90, h.P99, h.Max)
	}
}

func writeSessionText(w io.Writer, s SessionSnapshot) {
	outcome := s.Outcome
	if outcome == "" {
		outcome = "running"
	}
	fmt.Fprintf(w, "session id=%d trace=%s protocol=%s peer=%q role=%s local_set=%d peer_set=%d duration=%s modexp=%d oracle_hashes=%d wire_bytes=%d outcome=%q",
		s.ID, s.TraceID, s.Info.Protocol, s.Info.Peer, s.Info.Role,
		s.Info.LocalSetSize, s.Info.PeerSetSize,
		s.Duration.Round(time.Microsecond),
		s.Counters.ModExps(), s.Counters.OracleHashes,
		s.Counters.TotalWireBytes(), outcome)
	if len(s.Spans) > 0 {
		fmt.Fprintf(w, " spans=%q", RenderSpans(s.Spans))
	}
	fmt.Fprintln(w)
}

// Handler serves the registry snapshot: text by default, JSON when the
// request asks for it (?format=json or an Accept header preferring
// application/json).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if wantJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteText(w, snap)
	})
}

func wantJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}

// SessionSummary is one row of the /debug/sessions listing.
type SessionSummary struct {
	ID       uint64        `json:"id"`
	TraceID  TraceID       `json:"trace_id"`
	Protocol string        `json:"protocol"`
	Peer     string        `json:"peer,omitempty"`
	Role     string        `json:"role"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Outcome  string        `json:"outcome"`
}

// SessionsList is the JSON body served at /debug/sessions: the flight
// recorder's budget accounting plus one summary row per retained trace.
type SessionsList struct {
	BudgetBytes int64            `json:"budget_bytes"`
	UsedBytes   int64            `json:"used_bytes"`
	Evicted     int64            `json:"evicted"`
	Sessions    []SessionSummary `json:"sessions"`
}

// SessionsHandler serves the flight recorder:
//
//	GET <prefix>              — list retained sessions (SessionsList JSON)
//	GET <prefix>?trace=<hex>  — full snapshots for one trace ID
//	GET <prefix>/<id>         — one session's full snapshot JSON
//	GET <prefix>/<id>/trace   — that session as Chrome trace_event JSON
//
// where <prefix> is the path the handler is mounted at (DebugMux mounts
// it at /debug/sessions).
func (r *Registry) SessionsHandler(prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		f := r.Flight()
		rest := strings.TrimPrefix(strings.TrimPrefix(req.URL.Path, prefix), "/")
		if rest == "" {
			if tid, err := ParseTraceID(req.URL.Query().Get("trace")); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			} else if !tid.IsZero() {
				snaps := f.ByTrace(tid)
				if snaps == nil {
					snaps = []SessionSnapshot{}
				}
				writeJSON(w, snaps)
				return
			}
			list := SessionsList{
				BudgetBytes: f.Budget(),
				UsedBytes:   f.UsedBytes(),
				Evicted:     f.Evicted(),
				Sessions:    []SessionSummary{},
			}
			for _, s := range f.Snapshots() {
				list.Sessions = append(list.Sessions, SessionSummary{
					ID:       s.ID,
					TraceID:  s.TraceID,
					Protocol: s.Info.Protocol,
					Peer:     s.Info.Peer,
					Role:     s.Info.Role,
					Start:    s.Start,
					Duration: s.Duration,
					Outcome:  s.Outcome,
				})
			}
			writeJSON(w, list)
			return
		}
		idStr, tail, _ := strings.Cut(rest, "/")
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad session id %q", idStr), http.StatusBadRequest)
			return
		}
		snap, ok := f.ByID(id)
		if !ok {
			http.NotFound(w, req)
			return
		}
		switch tail {
		case "":
			writeJSON(w, snap)
		case "trace":
			w.Header().Set("Content-Type", "application/json")
			WriteTraceEvents(w, []SessionSnapshot{snap})
		default:
			http.NotFound(w, req)
		}
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// DebugMux returns the opt-in introspection mux served by psiserver's
// -debug-addr: /metrics (this registry), /debug/sessions (the flight
// recorder), /debug/vars (expvar) and /debug/pprof/* (runtime
// profiling).
func (r *Registry) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/sessions", r.SessionsHandler("/debug/sessions"))
	mux.Handle("/debug/sessions/", r.SessionsHandler("/debug/sessions"))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// publishMu serializes expvar publication checks (expvar.Publish panics
// on duplicate names, and expvar offers no unpublish for tests).
var publishMu sync.Mutex

// PublishExpvar exposes the registry snapshot as an expvar under name.
// Safe to call more than once; later calls for an existing name are
// no-ops.
func (r *Registry) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
