package obs

import "sync"

// DefaultFlightBudget is the flight recorder's default byte budget
// (an estimate of retained snapshot memory, not serialized size).
const DefaultFlightBudget = 1 << 20 // 1 MiB

// FlightRecorder retains the last N completed session traces inside a
// configurable byte budget — a black box for post-hoc analysis of slow
// or failed runs.  Session.End feeds it automatically; /debug/sessions
// serves it; WriteTraceEvents exports retained traces for Perfetto.
// Retention cost is estimated from the span-tree shape (see
// estimateSnapshotSize), and the oldest entries are evicted first.  All
// methods are safe for concurrent use and inert on a nil receiver.
type FlightRecorder struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries []flightEntry // oldest first
	evicted int64
}

type flightEntry struct {
	snap SessionSnapshot
	size int64
}

// estimateSnapshotSize approximates a snapshot's retained bytes: a fixed
// base for the session record plus a per-span charge covering the struct,
// name, and annotations.  An estimate keeps Add cheap (no JSON marshal
// per session end); the budget bounds memory to the right order, which
// is all a debug buffer needs.
func estimateSnapshotSize(s SessionSnapshot) int64 {
	size := int64(256) // session record, info strings, counters
	var walk func(spans []SpanSnapshot)
	walk = func(spans []SpanSnapshot) {
		for _, sp := range spans {
			size += 128 + int64(len(sp.Name))
			for _, a := range sp.Attrs {
				size += int64(len(a.Key) + len(a.Value) + 32)
			}
			walk(sp.Children)
		}
	}
	walk(s.Spans)
	return size
}

// SetBudget sets the byte budget and evicts down to it.  A budget of 0
// (or negative) disables the recorder and drops everything retained.
func (f *FlightRecorder) SetBudget(budget int64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.budget = budget
	f.evictLocked()
	f.mu.Unlock()
}

// Budget returns the configured byte budget (0 = disabled).
func (f *FlightRecorder) Budget() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.budget
}

// Add retains one completed session snapshot, evicting the oldest
// entries if the budget is exceeded.  A snapshot larger than the whole
// budget is dropped (and counted as evicted) rather than retained over
// budget.
func (f *FlightRecorder) Add(snap SessionSnapshot) {
	if f == nil {
		return
	}
	size := estimateSnapshotSize(snap)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.budget <= 0 || size > f.budget {
		if f.budget > 0 {
			f.evicted++
		}
		return
	}
	f.entries = append(f.entries, flightEntry{snap: snap, size: size})
	f.used += size
	f.evictLocked()
}

// evictLocked drops oldest entries until used ≤ budget.  Caller holds mu.
func (f *FlightRecorder) evictLocked() {
	if f.budget <= 0 {
		f.evicted += int64(len(f.entries))
		f.entries = nil
		f.used = 0
		return
	}
	drop := 0
	for drop < len(f.entries) && f.used > f.budget {
		f.used -= f.entries[drop].size
		drop++
	}
	if drop > 0 {
		f.entries = append([]flightEntry(nil), f.entries[drop:]...)
		f.evicted += int64(drop)
	}
}

// Len returns the number of retained session traces.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries)
}

// Evicted returns how many session traces have been dropped to stay
// inside the budget since the recorder was created.
func (f *FlightRecorder) Evicted() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.evicted
}

// UsedBytes returns the estimated retained size of the buffer.
func (f *FlightRecorder) UsedBytes() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.used
}

// Snapshots copies every retained session trace, oldest first.
func (f *FlightRecorder) Snapshots() []SessionSnapshot {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]SessionSnapshot, len(f.entries))
	for i, e := range f.entries {
		out[i] = e.snap
	}
	return out
}

// ByID returns the retained trace for one session id.
func (f *FlightRecorder) ByID(id uint64) (SessionSnapshot, bool) {
	if f == nil {
		return SessionSnapshot{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := len(f.entries) - 1; i >= 0; i-- {
		if f.entries[i].snap.ID == id {
			return f.entries[i].snap, true
		}
	}
	return SessionSnapshot{}, false
}

// ByTrace returns every retained session that reported under the given
// trace identity, oldest first.  (Both endpoints of a run share one
// trace ID, so against a shared registry — or when merging exports —
// this collects the full cross-party trace.)
func (f *FlightRecorder) ByTrace(tid TraceID) []SessionSnapshot {
	if f == nil || tid.IsZero() {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []SessionSnapshot
	for _, e := range f.entries {
		if e.snap.TraceID == tid {
			out = append(out, e.snap)
		}
	}
	return out
}
