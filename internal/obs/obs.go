// Package obs is the observability layer for the protocol stack: atomic
// counters for the primitives the paper's Section 6 cost model prices
// (modular exponentiations C_e, random-oracle hashes C_h, payload
// encryptions C_K, frames and bytes on the wire), lightweight spans with
// monotonic timings for each protocol phase, and pluggable sinks (text
// and JSON snapshots, expvar publication, an HTTP debug mux).
//
// The design goal is that the paper's closed-form cost analysis —
// 2·C_e·(|V_S|+|V_R|) exponentiations and (|V_S|+2|V_R|)·k bits for the
// intersection protocol — becomes a continuously *observed* quantity: a
// protocol run attributed to a Session produces counters that tests and
// the experiment harness compare against internal/costmodel exactly.
//
// # Cost of instrumentation
//
// Counting is attribution-driven: nothing is recorded unless a *Session
// is attached to the context a protocol runs under (obs.WithSession).
// Without a session, span constructors return a nil *Span whose methods
// are no-ops and no counter is touched, so the hot path pays only a
// pointer-typed context lookup.  With a session, each counted event is
// one atomic add per level of the counter chain (session → process
// global) — noise compared to a 1024-bit modular exponentiation.
//
// The package is intentionally a leaf: it imports only the standard
// library, so every layer of the repository (crypto substrate, protocol
// drivers, transport, server) can feed it without import cycles.
package obs

import "sync/atomic"

// Counters is one level of the operation census.  Counters form a chain:
// an Add on a session-level Counters also increments its parent (the
// process-global level), giving per-session and process-global
// aggregation from a single call.  All methods are safe for concurrent
// use; a nil *Counters is inert.
type Counters struct {
	parent *Counters

	// Costed crypto primitives (Section 6.1's C_e, C_h, C_K).
	modExpEncrypts  atomic.Int64
	modExpDecrypts  atomic.Int64
	keyGens         atomic.Int64
	oracleHashes    atomic.Int64
	payloadEncrypts atomic.Int64
	payloadDecrypts atomic.Int64

	// Communication, split into payload (what the Section 6.1 formulas
	// count, plus codec overhead) and on-wire (payload + frame headers).
	framesSent       atomic.Int64
	framesRecv       atomic.Int64
	payloadBytesSent atomic.Int64
	payloadBytesRecv atomic.Int64
	wireBytesSent    atomic.Int64
	wireBytesRecv    atomic.Int64
}

// NewCounters returns a Counters level chained to parent (nil for a
// root).
func NewCounters(parent *Counters) *Counters {
	return &Counters{parent: parent}
}

// AddModExpEncrypts records n encryption exponentiations (C_e each).
func (c *Counters) AddModExpEncrypts(n int64) {
	for x := c; x != nil; x = x.parent {
		x.modExpEncrypts.Add(n)
	}
}

// AddModExpDecrypts records n decryption exponentiations (C_e each).
func (c *Counters) AddModExpDecrypts(n int64) {
	for x := c; x != nil; x = x.parent {
		x.modExpDecrypts.Add(n)
	}
}

// AddKeyGens records n key generations.
func (c *Counters) AddKeyGens(n int64) {
	for x := c; x != nil; x = x.parent {
		x.keyGens.Add(n)
	}
}

// AddOracleHashes records n random-oracle evaluations (C_h each).
func (c *Counters) AddOracleHashes(n int64) {
	for x := c; x != nil; x = x.parent {
		x.oracleHashes.Add(n)
	}
}

// AddPayloadEncrypts records n ext(v)-payload encryptions (C_K each).
func (c *Counters) AddPayloadEncrypts(n int64) {
	for x := c; x != nil; x = x.parent {
		x.payloadEncrypts.Add(n)
	}
}

// AddPayloadDecrypts records n ext(v)-payload decryptions (C_K each).
func (c *Counters) AddPayloadDecrypts(n int64) {
	for x := c; x != nil; x = x.parent {
		x.payloadDecrypts.Add(n)
	}
}

// AddFrameSent records one outbound frame carrying payloadBytes of codec
// payload and wireBytes on the wire (payload + frame header).
func (c *Counters) AddFrameSent(payloadBytes, wireBytes int64) {
	for x := c; x != nil; x = x.parent {
		x.framesSent.Add(1)
		x.payloadBytesSent.Add(payloadBytes)
		x.wireBytesSent.Add(wireBytes)
	}
}

// AddFrameRecv records one inbound frame.
func (c *Counters) AddFrameRecv(payloadBytes, wireBytes int64) {
	for x := c; x != nil; x = x.parent {
		x.framesRecv.Add(1)
		x.payloadBytesRecv.Add(payloadBytes)
		x.wireBytesRecv.Add(wireBytes)
	}
}

// Snapshot returns a consistent-enough copy of this level (each field is
// read atomically; cross-field skew is possible under concurrent load,
// which is fine for reporting).  A nil receiver yields a zero snapshot.
func (c *Counters) Snapshot() CounterSnapshot {
	if c == nil {
		return CounterSnapshot{}
	}
	return CounterSnapshot{
		ModExpEncrypts:   c.modExpEncrypts.Load(),
		ModExpDecrypts:   c.modExpDecrypts.Load(),
		KeyGens:          c.keyGens.Load(),
		OracleHashes:     c.oracleHashes.Load(),
		PayloadEncrypts:  c.payloadEncrypts.Load(),
		PayloadDecrypts:  c.payloadDecrypts.Load(),
		FramesSent:       c.framesSent.Load(),
		FramesRecv:       c.framesRecv.Load(),
		PayloadBytesSent: c.payloadBytesSent.Load(),
		PayloadBytesRecv: c.payloadBytesRecv.Load(),
		WireBytesSent:    c.wireBytesSent.Load(),
		WireBytesRecv:    c.wireBytesRecv.Load(),
	}
}

// CounterSnapshot is a point-in-time copy of one Counters level.
type CounterSnapshot struct {
	ModExpEncrypts   int64 `json:"modexp_encrypts"`
	ModExpDecrypts   int64 `json:"modexp_decrypts"`
	KeyGens          int64 `json:"keygens"`
	OracleHashes     int64 `json:"oracle_hashes"`
	PayloadEncrypts  int64 `json:"payload_encrypts"`
	PayloadDecrypts  int64 `json:"payload_decrypts"`
	FramesSent       int64 `json:"frames_sent"`
	FramesRecv       int64 `json:"frames_recv"`
	PayloadBytesSent int64 `json:"payload_bytes_sent"`
	PayloadBytesRecv int64 `json:"payload_bytes_recv"`
	WireBytesSent    int64 `json:"wire_bytes_sent"`
	WireBytesRecv    int64 `json:"wire_bytes_recv"`
}

// ModExps returns the total C_e census: encrypts + decrypts, the
// quantity the Section 6.1 formulas price.
func (s CounterSnapshot) ModExps() int64 {
	return s.ModExpEncrypts + s.ModExpDecrypts
}

// TotalPayloadBytes returns payload traffic in both directions.
func (s CounterSnapshot) TotalPayloadBytes() int64 {
	return s.PayloadBytesSent + s.PayloadBytesRecv
}

// TotalWireBytes returns on-wire traffic in both directions.
func (s CounterSnapshot) TotalWireBytes() int64 {
	return s.WireBytesSent + s.WireBytesRecv
}

// Add returns the field-wise sum of two snapshots (used to combine both
// endpoints of a protocol run).
func (s CounterSnapshot) Add(o CounterSnapshot) CounterSnapshot {
	return CounterSnapshot{
		ModExpEncrypts:   s.ModExpEncrypts + o.ModExpEncrypts,
		ModExpDecrypts:   s.ModExpDecrypts + o.ModExpDecrypts,
		KeyGens:          s.KeyGens + o.KeyGens,
		OracleHashes:     s.OracleHashes + o.OracleHashes,
		PayloadEncrypts:  s.PayloadEncrypts + o.PayloadEncrypts,
		PayloadDecrypts:  s.PayloadDecrypts + o.PayloadDecrypts,
		FramesSent:       s.FramesSent + o.FramesSent,
		FramesRecv:       s.FramesRecv + o.FramesRecv,
		PayloadBytesSent: s.PayloadBytesSent + o.PayloadBytesSent,
		PayloadBytesRecv: s.PayloadBytesRecv + o.PayloadBytesRecv,
		WireBytesSent:    s.WireBytesSent + o.WireBytesSent,
		WireBytesRecv:    s.WireBytesRecv + o.WireBytesRecv,
	}
}
