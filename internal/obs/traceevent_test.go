package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeTraceFile round-trips the exported bytes through encoding/json
// exactly as chrome://tracing would parse them.
func decodeTraceFile(t *testing.T, data []byte) traceEventFile {
	t.Helper()
	var file traceEventFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, data)
	}
	return file
}

func TestWriteTraceEventsTwoParty(t *testing.T) {
	tid := NewTraceID()
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	initiator := SessionSnapshot{
		ID: 1, TraceID: tid, RootSpanID: 0x10,
		Info:  SessionInfo{Protocol: "intersection", Role: "receiver", Peer: "s:9000"},
		Start: base, Duration: 8 * time.Millisecond, Outcome: "ok",
		Spans: []SpanSnapshot{{
			Name: "exchange", SpanID: 0x11, ParentID: 0x10,
			Offset: time.Millisecond, Duration: 2 * time.Millisecond,
			Attrs:    []SpanAttr{{Key: "chunks", Value: "4"}},
			Children: []SpanSnapshot{{Name: "sub", SpanID: 0x12, ParentID: 0x11}},
		}},
	}
	responder := SessionSnapshot{
		ID: 7, TraceID: tid, RootSpanID: 0x20, RootParentID: 0x10,
		Info:  SessionInfo{Protocol: "intersection", Role: "sender"},
		Start: base.Add(3 * time.Millisecond), Duration: 4 * time.Millisecond, Outcome: "ok",
	}

	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, []SessionSnapshot{initiator, responder}); err != nil {
		t.Fatal(err)
	}
	file := decodeTraceFile(t, buf.Bytes())
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", file.DisplayTimeUnit)
	}

	byName := map[string][]traceEvent{}
	for _, ev := range file.TraceEvents {
		byName[ev.Name] = append(byName[ev.Name], ev)
	}

	// Each snapshot is its own process: metadata rows name both.
	if got := len(byName["process_name"]); got != 2 {
		t.Fatalf("%d process_name events, want 2", got)
	}
	if name := byName["process_name"][0].Args["name"]; name != "receiver intersection (peer s:9000)" {
		t.Errorf("initiator process name = %q", name)
	}
	if name := byName["process_name"][1].Args["name"]; name != "sender intersection" {
		t.Errorf("responder process name = %q", name)
	}

	// Session events: aligned to the earliest start, pids 1 and 2.
	sessions := byName["session"]
	if len(sessions) != 2 {
		t.Fatalf("%d session events, want 2", len(sessions))
	}
	init, resp := sessions[0], sessions[1]
	if init.Phase != "X" || init.PID != 1 || init.TS != 0 || init.Dur != 8000 {
		t.Errorf("initiator session event = %+v, want X pid=1 ts=0 dur=8000µs", init)
	}
	if resp.PID != 2 || resp.TS != 3000 || resp.Dur != 4000 {
		t.Errorf("responder session event = %+v, want pid=2 ts=3000 dur=4000µs", resp)
	}
	if init.Args["trace_id"] != tid.String() || resp.Args["trace_id"] != tid.String() {
		t.Error("both session events must carry the shared trace id")
	}
	if _, has := init.Args["parent_id"]; has {
		t.Error("initiator must not carry a parent_id")
	}
	if resp.Args["parent_id"] != SpanID(0x10).String() {
		t.Errorf("responder parent_id = %v, want the initiator's root span", resp.Args["parent_id"])
	}

	// Phase spans: offset from their session start, ids and attrs in args.
	ex := byName["exchange"]
	if len(ex) != 1 {
		t.Fatalf("%d exchange events, want 1", len(ex))
	}
	if ex[0].TS != 1000 || ex[0].Dur != 2000 || ex[0].PID != 1 {
		t.Errorf("exchange event = %+v, want ts=1000 dur=2000 pid=1", ex[0])
	}
	if ex[0].Args["span_id"] != SpanID(0x11).String() ||
		ex[0].Args["parent_id"] != SpanID(0x10).String() ||
		ex[0].Args["chunks"] != "4" {
		t.Errorf("exchange args = %v", ex[0].Args)
	}
	if got := len(byName["sub"]); got != 1 {
		t.Errorf("%d sub (nested child) events, want 1", got)
	}
}

func TestWriteTraceEventsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, nil); err != nil {
		t.Fatal(err)
	}
	file := decodeTraceFile(t, buf.Bytes())
	if file.TraceEvents == nil || len(file.TraceEvents) != 0 {
		t.Errorf("empty export = %v, want a present-but-empty traceEvents array", file.TraceEvents)
	}
}

// TestWriteTraceEventsLiveSession exports a real finished session, the
// path /debug/sessions/<id>/trace exercises.
func TestWriteTraceEventsLiveSession(t *testing.T) {
	reg := NewRegistry()
	sess := reg.StartSession(SessionInfo{Protocol: "equijoin", Role: "receiver"})
	sp := sess.Root().StartChild("hash-to-group")
	sp.Annotate("values", 3)
	sp.End()
	snap := sess.End(nil)

	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, []SessionSnapshot{snap}); err != nil {
		t.Fatal(err)
	}
	file := decodeTraceFile(t, buf.Bytes())
	var found bool
	for _, ev := range file.TraceEvents {
		if ev.Name == "hash-to-group" && ev.Args["values"] == "3" {
			found = true
		}
	}
	if !found {
		t.Errorf("exported events missing the annotated phase span: %+v", file.TraceEvents)
	}
}
