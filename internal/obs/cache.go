package obs

import "sync/atomic"

// CacheStats is the census of the encrypted-set cache (see
// core.SenderSetCache): how often a session could replay a precomputed
// encrypted set instead of re-running the bulk-exponentiation phase,
// and how entries left the cache again.  Where Counters price what one
// run computes, CacheStats measures the amortization the paper's
// Section 6.1 cost model predicts across a *series* of runs.
//
// All methods are safe for concurrent use and inert on a nil receiver.
// A CacheStats contains atomics and must not be copied.
type CacheStats struct {
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	rotations atomic.Int64
	upgrades  atomic.Int64
	rebuilds  atomic.Int64
}

// AddHit records one session that reused a cached encrypted set.
func (c *CacheStats) AddHit() {
	if c != nil {
		c.hits.Add(1)
	}
}

// AddMiss records one session that had to run the full
// bulk-exponentiation phase (and typically populated the cache).
func (c *CacheStats) AddMiss() {
	if c != nil {
		c.misses.Add(1)
	}
}

// AddEviction records one entry discarded to keep the cache inside its
// memory bound, or displaced by a newer version of the same slot.
func (c *CacheStats) AddEviction() {
	if c != nil {
		c.evictions.Add(1)
	}
}

// AddRotation records one wholesale key-rotation flush of n entries.
func (c *CacheStats) AddRotation(n int64) {
	if c != nil {
		c.rotations.Add(1)
		c.evictions.Add(n)
	}
}

// AddUpgrade records one stale cached set brought current by
// re-encrypting only its delta (core's cache upgrade path) instead of
// being discarded and rebuilt.
func (c *CacheStats) AddUpgrade() {
	if c != nil {
		c.upgrades.Add(1)
	}
}

// AddRebuild records one stale cached set that could not be upgraded —
// delta unavailable, churn over the configured bound, or a conflict —
// and fell back to the full bulk-exponentiation rebuild.
func (c *CacheStats) AddRebuild() {
	if c != nil {
		c.rebuilds.Add(1)
	}
}

// Snapshot returns a point-in-time copy; nil yields a zero snapshot.
func (c *CacheStats) Snapshot() CacheSnapshot {
	if c == nil {
		return CacheSnapshot{}
	}
	return CacheSnapshot{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Rotations: c.rotations.Load(),
		Upgrades:  c.upgrades.Load(),
		Rebuilds:  c.rebuilds.Load(),
	}
}

// CacheSnapshot is a point-in-time copy of a CacheStats census.
type CacheSnapshot struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Rotations int64 `json:"rotations"`
	Upgrades  int64 `json:"upgrades"`
	Rebuilds  int64 `json:"rebuilds"`
}
