package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// traceEvent is one entry of the Chrome trace_event format ("X" complete
// events plus "M" metadata), as consumed by chrome://tracing and
// Perfetto.  Timestamps and durations are microseconds; fractional
// values carry the nanosecond precision through.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceEventFile is the JSON-object form of the trace_event format.
type traceEventFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents exports session traces as Chrome trace_event JSON,
// loadable directly in chrome://tracing or Perfetto.  Each snapshot
// becomes its own process row (named after its role and protocol), so a
// merged client+server pair for one trace ID renders as two aligned
// timelines.  Alignment uses each session's wall-clock start relative to
// the earliest one exported; for sessions captured on one machine (the
// common case: tests, loopback runs, a server's own flight recorder)
// that is exact, across machines it inherits their clock skew.
func WriteTraceEvents(w io.Writer, snaps []SessionSnapshot) error {
	base := time.Time{}
	for _, s := range snaps {
		if base.IsZero() || s.Start.Before(base) {
			base = s.Start
		}
	}
	file := traceEventFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	usec := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	for i, s := range snaps {
		pid := i + 1
		procName := fmt.Sprintf("%s %s", s.Info.Role, s.Info.Protocol)
		if s.Info.Peer != "" {
			procName += " (peer " + s.Info.Peer + ")"
		}
		file.TraceEvents = append(file.TraceEvents,
			traceEvent{Name: "process_name", Phase: "M", PID: pid, TID: 1,
				Args: map[string]any{"name": procName}},
			traceEvent{Name: "thread_name", Phase: "M", PID: pid, TID: 1,
				Args: map[string]any{"name": "session " + fmt.Sprint(s.ID)}},
		)
		sessStart := s.Start.Sub(base)
		sessArgs := map[string]any{
			"trace_id": s.TraceID.String(),
			"span_id":  s.RootSpanID.String(),
			"outcome":  s.Outcome,
		}
		if s.RootParentID != 0 {
			sessArgs["parent_id"] = s.RootParentID.String()
		}
		file.TraceEvents = append(file.TraceEvents, traceEvent{
			Name: "session", Cat: s.Info.Protocol, Phase: "X",
			TS: usec(sessStart), Dur: usec(s.Duration), PID: pid, TID: 1,
			Args: sessArgs,
		})
		var walk func(spans []SpanSnapshot)
		walk = func(spans []SpanSnapshot) {
			for _, sp := range spans {
				args := map[string]any{
					"span_id": sp.SpanID.String(),
				}
				if sp.ParentID != 0 {
					args["parent_id"] = sp.ParentID.String()
				}
				for _, a := range sp.Attrs {
					args[a.Key] = a.Value
				}
				file.TraceEvents = append(file.TraceEvents, traceEvent{
					Name: sp.Name, Cat: s.Info.Protocol, Phase: "X",
					TS: usec(sessStart + sp.Offset), Dur: usec(sp.Duration),
					PID: pid, TID: 1, Args: args,
				})
				walk(sp.Children)
			}
		}
		walk(s.Spans)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}
