package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// get serves one request against the debug mux and returns the recorder.
func get(reg *Registry, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	reg.DebugMux().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestSessionsEndpointEmpty(t *testing.T) {
	reg := NewRegistry()
	rec := get(reg, "/debug/sessions")
	if rec.Code != 200 {
		t.Fatalf("GET /debug/sessions = %d, want 200", rec.Code)
	}
	var list SessionsList
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.BudgetBytes != DefaultFlightBudget || len(list.Sessions) != 0 {
		t.Errorf("empty list = %+v", list)
	}
	// The sessions field must be a JSON array even when empty, so
	// clients can range over it without a null check.
	if !strings.Contains(rec.Body.String(), `"sessions": []`) {
		t.Errorf("empty list body = %s, want explicit empty array", rec.Body.String())
	}
}

func TestSessionsEndpointListAndDetail(t *testing.T) {
	reg := NewRegistry()
	sess := reg.StartSession(SessionInfo{Protocol: "equijoin", Peer: "10.0.0.7:9000", Role: "receiver"})
	sp := sess.Root().StartChild("exchange")
	sp.Annotate("chunks", 2)
	sp.End()
	id, tid := sess.ID(), sess.TraceID()
	sess.End(nil)

	// List: one summary row with identity and outcome.
	var list SessionsList
	if err := json.Unmarshal(get(reg, "/debug/sessions").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 1 {
		t.Fatalf("list has %d sessions, want 1", len(list.Sessions))
	}
	row := list.Sessions[0]
	if row.ID != id || row.TraceID != tid || row.Protocol != "equijoin" ||
		row.Role != "receiver" || row.Outcome != "ok" || row.Peer != "10.0.0.7:9000" {
		t.Errorf("summary row = %+v", row)
	}
	if list.UsedBytes <= 0 || list.UsedBytes > list.BudgetBytes {
		t.Errorf("budget accounting = %d/%d", list.UsedBytes, list.BudgetBytes)
	}

	// Detail: the full snapshot, spans and attrs included.
	var snap SessionSnapshot
	if err := json.Unmarshal(get(reg, fmt.Sprintf("/debug/sessions/%d", id)).Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != id || snap.TraceID != tid || len(snap.Spans) != 1 ||
		snap.Spans[0].Name != "exchange" || len(snap.Spans[0].Attrs) != 1 {
		t.Errorf("detail snapshot = %+v", snap)
	}

	// Per-session Chrome trace export parses and carries the trace id.
	rec := get(reg, fmt.Sprintf("/debug/sessions/%d/trace", id))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace Content-Type = %q", ct)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	var sawSession bool
	for _, ev := range file.TraceEvents {
		if ev.Name == "session" && ev.Args["trace_id"] == tid.String() {
			sawSession = true
		}
	}
	if !sawSession {
		t.Errorf("trace export missing the session event: %+v", file.TraceEvents)
	}

	// Trace-filtered query: the shared-registry form of cross-party
	// stitching.
	var byTrace []SessionSnapshot
	if err := json.Unmarshal(get(reg, "/debug/sessions?trace="+tid.String()).Body.Bytes(), &byTrace); err != nil {
		t.Fatal(err)
	}
	if len(byTrace) != 1 || byTrace[0].ID != id {
		t.Errorf("trace query = %+v, want the one session", byTrace)
	}
	// An unknown trace yields an empty — not null — array.
	body := get(reg, "/debug/sessions?trace="+NewTraceID().String()).Body.String()
	if !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Errorf("unknown trace body = %q, want empty array", body)
	}
}

func TestSessionsEndpointErrors(t *testing.T) {
	reg := NewRegistry()
	reg.StartSession(SessionInfo{Protocol: "intersection"}).End(nil)
	for path, want := range map[string]int{
		"/debug/sessions/999":       404, // unknown id
		"/debug/sessions/abc":       400, // unparsable id
		"/debug/sessions/1/bogus":   404, // unknown tail
		"/debug/sessions?trace=zzz": 400, // unparsable trace id
	} {
		if rec := get(reg, path); rec.Code != want {
			t.Errorf("GET %s = %d, want %d", path, rec.Code, want)
		}
	}
}

// TestMetricsIncludesLatencies: the histogram census renders on /metrics
// in both encodings, and session lines carry the trace id.
func TestMetricsIncludesLatencies(t *testing.T) {
	reg := NewRegistry()
	reg.Latencies().Record(LatTransportSend, 100*time.Microsecond)
	sess := reg.StartSession(SessionInfo{Protocol: "intersection", Role: "receiver"})
	tid := sess.TraceID()
	sess.End(nil)

	body := get(reg, "/metrics").Body.String()
	for _, want := range []string{
		"# latency histograms",
		`latency name="transport/send" count=1`,
		`latency name="phase/session" count=1`,
		"trace=" + tid.String(),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics text missing %q:\n%s", want, body)
		}
	}

	var snap RegistrySnapshot
	if err := json.Unmarshal(get(reg, "/metrics?format=json").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	h, ok := snap.Latencies[LatTransportSend]
	if !ok || h.Count != 1 || h.P50 <= 0 || h.P99 < h.P50 {
		t.Errorf("JSON latencies[%s] = %+v/%v", LatTransportSend, h, ok)
	}
	if _, ok := snap.Latencies[LatPhasePrefix+"session"]; !ok {
		t.Errorf("JSON latencies missing phase/session: %v", snap.Latencies)
	}
}
