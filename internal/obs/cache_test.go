package obs

import (
	"strings"
	"testing"
)

func TestCacheStatsCensus(t *testing.T) {
	var c CacheStats
	c.AddHit()
	c.AddMiss()
	c.AddMiss()
	c.AddEviction()
	c.AddRotation(3) // one rotation retiring three entries

	snap := c.Snapshot()
	want := CacheSnapshot{Hits: 1, Misses: 2, Evictions: 4, Rotations: 1}
	if snap != want {
		t.Errorf("snapshot = %+v, want %+v", snap, want)
	}

	// Nil receivers are inert, like the rest of the package.
	var nilStats *CacheStats
	nilStats.AddHit()
	nilStats.AddMiss()
	nilStats.AddEviction()
	nilStats.AddRotation(5)
	if got := nilStats.Snapshot(); got != (CacheSnapshot{}) {
		t.Errorf("nil snapshot = %+v, want zero", got)
	}
}

func TestCacheCountersOnMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Cache().AddHit()
	reg.Cache().AddMiss()

	var sb strings.Builder
	WriteText(&sb, reg.Snapshot())
	out := sb.String()
	for _, line := range []string{"cache_hits 1", "cache_misses 1", "cache_evictions 0", "cache_rotations 0"} {
		if !strings.Contains(out, line) {
			t.Errorf("metrics text missing %q:\n%s", line, out)
		}
	}
}
