package obs

import "sync/atomic"

// Lifecycle is the census of session-lifecycle events: the robustness
// layer's timeouts, rejections, retries, and drain outcomes.  Where the
// Counters chain prices what a *successful* run computes and ships, the
// Lifecycle block records how the service survived everything else — the
// stalled peers, accept storms, saturation rejects, and shutdown drains
// a long-lived deployment sees under load.
//
// All methods are safe for concurrent use and inert on a nil receiver,
// so callers without an observability registry attached pay nothing.
// A Lifecycle contains atomics and must not be copied.
type Lifecycle struct {
	acceptRetries     atomic.Int64
	saturationRejects atomic.Int64
	handshakeTimeouts atomic.Int64
	idleTimeouts      atomic.Int64
	sessionTimeouts   atomic.Int64
	drains            atomic.Int64
	drainForced       atomic.Int64
	drainCancelled    atomic.Int64
	clientRetries     atomic.Int64
}

// AddAcceptRetry records one transient accept-loop failure that was
// retried after backoff instead of killing the server.
func (l *Lifecycle) AddAcceptRetry() {
	if l != nil {
		l.acceptRetries.Add(1)
	}
}

// AddSaturationReject records one connection refused because the
// concurrent-session limit was reached.
func (l *Lifecycle) AddSaturationReject() {
	if l != nil {
		l.saturationRejects.Add(1)
	}
}

// AddHandshakeTimeout records one session evicted because its first
// frame never arrived within the handshake allowance.
func (l *Lifecycle) AddHandshakeTimeout() {
	if l != nil {
		l.handshakeTimeouts.Add(1)
	}
}

// AddIdleTimeout records one session evicted mid-protocol by the
// per-frame idle allowance.
func (l *Lifecycle) AddIdleTimeout() {
	if l != nil {
		l.idleTimeouts.Add(1)
	}
}

// AddSessionTimeout records one session evicted by the whole-session
// deadline.
func (l *Lifecycle) AddSessionTimeout() {
	if l != nil {
		l.sessionTimeouts.Add(1)
	}
}

// AddDrain records one graceful drain begun at shutdown.
func (l *Lifecycle) AddDrain() {
	if l != nil {
		l.drains.Add(1)
	}
}

// AddDrainForced records a drain that hit its deadline and had to
// force-cancel n still-running sessions.
func (l *Lifecycle) AddDrainForced(n int64) {
	if l != nil {
		l.drainForced.Add(1)
		l.drainCancelled.Add(n)
	}
}

// AddClientRetry records one client-side re-dial after a transient
// connection-establishment failure.
func (l *Lifecycle) AddClientRetry() {
	if l != nil {
		l.clientRetries.Add(1)
	}
}

// Snapshot returns a point-in-time copy; nil yields a zero snapshot.
func (l *Lifecycle) Snapshot() LifecycleSnapshot {
	if l == nil {
		return LifecycleSnapshot{}
	}
	return LifecycleSnapshot{
		AcceptRetries:     l.acceptRetries.Load(),
		SaturationRejects: l.saturationRejects.Load(),
		HandshakeTimeouts: l.handshakeTimeouts.Load(),
		IdleTimeouts:      l.idleTimeouts.Load(),
		SessionTimeouts:   l.sessionTimeouts.Load(),
		Drains:            l.drains.Load(),
		DrainForced:       l.drainForced.Load(),
		DrainCancelled:    l.drainCancelled.Load(),
		ClientRetries:     l.clientRetries.Load(),
	}
}

// LifecycleSnapshot is a point-in-time copy of a Lifecycle census.
type LifecycleSnapshot struct {
	AcceptRetries     int64 `json:"accept_retries"`
	SaturationRejects int64 `json:"saturation_rejects"`
	HandshakeTimeouts int64 `json:"handshake_timeouts"`
	IdleTimeouts      int64 `json:"idle_timeouts"`
	SessionTimeouts   int64 `json:"session_timeouts"`
	Drains            int64 `json:"drains"`
	DrainForced       int64 `json:"drain_forced"`
	DrainCancelled    int64 `json:"drain_cancelled_sessions"`
	ClientRetries     int64 `json:"client_retries"`
}
