package obs

import (
	"testing"
	"time"
)

// TestHistBucketLayout pins the log-linear bucket geometry: the linear
// nanosecond region, the first full octave, and the clamp.
func TestHistBucketLayout(t *testing.T) {
	cases := []struct {
		ns   int64
		idx  int
		up   int64 // exclusive upper bound the quantiles report
	}{
		{0, 0, 1},
		{1, 1, 2},
		{15, 15, 16},
		{16, 16, 17},   // first sub-bucket of octave [16,32)
		{31, 31, 32},   // last sub-bucket of octave [16,32)
		{32, 32, 34},   // octave [32,64): sub-bucket width 2
		{33, 32, 34},
		{34, 33, 36},
		{1000, 111, 1024},
		{1 << 20, 16 + (20-4)*16, 1<<20 + 1<<16},
	}
	for _, c := range cases {
		if got := histIndex(c.ns); got != c.idx {
			t.Errorf("histIndex(%d) = %d, want %d", c.ns, got, c.idx)
		}
		if got := histBound(c.idx); got != c.up {
			t.Errorf("histBound(%d) = %d, want %d", c.idx, got, c.up)
		}
	}
	// Clamp: anything at or above 2^histMaxExp lands in the last bucket.
	if got := histIndex(1 << histMaxExp); got != histBuckets-1 {
		t.Errorf("histIndex(2^%d) = %d, want %d", histMaxExp, got, histBuckets-1)
	}
	if got := histIndex(int64(1)<<62 + 12345); got != histBuckets-1 {
		t.Errorf("histIndex(huge) = %d, want %d", got, histBuckets-1)
	}
}

// TestHistBucketRoundTrip: bounds are strictly increasing and every
// bucket's half-open range maps back to itself.
func TestHistBucketRoundTrip(t *testing.T) {
	prev := int64(0)
	for i := 0; i < histBuckets; i++ {
		up := histBound(i)
		if up <= prev {
			t.Fatalf("histBound(%d) = %d, not > histBound(%d) = %d", i, up, i-1, prev)
		}
		if got := histIndex(up - 1); got != i {
			t.Fatalf("histIndex(histBound(%d)-1) = histIndex(%d) = %d, want %d", i, up-1, got, i)
		}
		if i < histBuckets-1 {
			if got := histIndex(up); got != i+1 {
				t.Fatalf("histIndex(histBound(%d)) = %d, want %d", i, got, i+1)
			}
		}
		prev = up
	}
}

// TestHistogramQuantiles: identical observations make every quantile the
// bucket's upper bound — deterministic, so pinned exactly.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(1000 * time.Nanosecond)
	}
	snap := h.Snapshot()
	if snap.Count != 100 || snap.Sum != 100*1000 {
		t.Errorf("count/sum = %d/%d, want 100/100000", snap.Count, snap.Sum)
	}
	if snap.Mean != 1000 {
		t.Errorf("mean = %v, want 1µs", snap.Mean)
	}
	for _, q := range []struct {
		name string
		got  time.Duration
	}{{"p50", snap.P50}, {"p90", snap.P90}, {"p99", snap.P99}, {"max", snap.Max}} {
		if q.got != 1024 {
			t.Errorf("%s = %v, want 1.024µs (bucket upper bound)", q.name, q.got)
		}
	}
}

// TestHistogramQuantileSpread: a bimodal distribution separates p50 from
// p99.
func TestHistogramQuantileSpread(t *testing.T) {
	var h Histogram
	for i := 0; i < 98; i++ {
		h.Record(time.Microsecond)
	}
	h.Record(time.Millisecond)
	h.Record(time.Millisecond)
	snap := h.Snapshot()
	if snap.P50 != 1024 {
		t.Errorf("p50 = %v, want 1.024µs", snap.P50)
	}
	// The two 1ms outliers are ranks 98 and 99 of 100: p99 must land in
	// the millisecond bucket, far above p50.
	if snap.P99 < 500*time.Microsecond {
		t.Errorf("p99 = %v, want ≈1ms", snap.P99)
	}
	if snap.Max != snap.P99 {
		t.Errorf("max = %v, want = p99 = %v (same bucket)", snap.Max, snap.P99)
	}
}

// TestHistogramNegativeClampsToZero: negative durations (clock skew)
// count into the zero bucket rather than corrupting the array.
func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Sum != 0 || snap.Max != 1 {
		t.Errorf("after negative record: %+v, want count=1 sum=0 max=1ns", snap)
	}
}

// TestHistogramNilInert: the nil histogram and nil latency registry are
// no-ops, matching the rest of the obs API.
func TestHistogramNilInert(t *testing.T) {
	var h *Histogram
	h.Record(time.Second) // must not panic
	if snap := h.Snapshot(); snap != (HistogramSnapshot{}) {
		t.Errorf("nil histogram snapshot = %+v, want zero", snap)
	}
	var l *Latencies
	l.Record("x", time.Second)
	if l.Hist("x") != nil {
		t.Error("nil Latencies.Hist must return nil")
	}
	if m := l.Snapshot(); len(m) != 0 {
		t.Errorf("nil Latencies snapshot = %v, want empty", m)
	}
}

// TestLatenciesNamedSeries: named histograms are independent and the
// snapshot copies them all.
func TestLatenciesNamedSeries(t *testing.T) {
	var l Latencies
	l.Record(LatTransportSend, time.Millisecond)
	l.Record(LatTransportSend, time.Millisecond)
	l.Record(LatTransportRecv, time.Microsecond)
	l.Hist(LatChunkPipeline).Record(time.Second)

	m := l.Snapshot()
	if len(m) != 3 {
		t.Fatalf("snapshot has %d series, want 3: %v", len(m), m)
	}
	if m[LatTransportSend].Count != 2 || m[LatTransportRecv].Count != 1 || m[LatChunkPipeline].Count != 1 {
		t.Errorf("series counts = %d/%d/%d, want 2/1/1",
			m[LatTransportSend].Count, m[LatTransportRecv].Count, m[LatChunkPipeline].Count)
	}
	if same := l.Hist(LatTransportSend); same != l.Hist(LatTransportSend) {
		t.Error("Hist must return the same histogram for the same name")
	}
}

// TestHistogramConcurrent exercises Record under parallel writers so the
// race target covers the lock-free path.
func TestHistogramConcurrent(t *testing.T) {
	var l Latencies
	const workers, each = 8, 1000
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		go func(i int) {
			for j := 0; j < each; j++ {
				l.Record(LatChunkPipeline, time.Duration(i*j)*time.Nanosecond)
			}
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	if got := l.Hist(LatChunkPipeline).Snapshot().Count; got != workers*each {
		t.Errorf("count = %d, want %d", got, workers*each)
	}
}
