package obs

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterChainAggregates(t *testing.T) {
	root := NewCounters(nil)
	child := NewCounters(root)

	child.AddModExpEncrypts(3)
	child.AddModExpDecrypts(2)
	child.AddKeyGens(1)
	child.AddOracleHashes(7)
	child.AddPayloadEncrypts(4)
	child.AddPayloadDecrypts(2)
	child.AddFrameSent(100, 104)
	child.AddFrameRecv(50, 54)
	root.AddOracleHashes(1) // root-only traffic must not reach the child

	cs, rs := child.Snapshot(), root.Snapshot()
	if cs.ModExps() != 5 || rs.ModExps() != 5 {
		t.Errorf("modexps child/root = %d/%d, want 5/5", cs.ModExps(), rs.ModExps())
	}
	if cs.OracleHashes != 7 || rs.OracleHashes != 8 {
		t.Errorf("oracle hashes child/root = %d/%d, want 7/8", cs.OracleHashes, rs.OracleHashes)
	}
	if cs.FramesSent != 1 || cs.PayloadBytesSent != 100 || cs.WireBytesSent != 104 {
		t.Errorf("sent census = %d/%d/%d, want 1/100/104",
			cs.FramesSent, cs.PayloadBytesSent, cs.WireBytesSent)
	}
	if cs.TotalPayloadBytes() != 150 || cs.TotalWireBytes() != 158 {
		t.Errorf("totals = %d/%d, want 150/158", cs.TotalPayloadBytes(), cs.TotalWireBytes())
	}
	sum := cs.Add(rs)
	if sum.OracleHashes != 15 || sum.ModExps() != 10 {
		t.Errorf("Add: hashes=%d modexps=%d, want 15/10", sum.OracleHashes, sum.ModExps())
	}
}

func TestNilCountersAndSpansAreInert(t *testing.T) {
	var c *Counters
	if snap := c.Snapshot(); snap != (CounterSnapshot{}) {
		t.Errorf("nil snapshot = %+v, want zero", snap)
	}
	var sp *Span
	sp.End() // must not panic
	if child := sp.StartChild("x"); child != nil {
		t.Errorf("nil StartChild = %v, want nil", child)
	}
	// A context without a session yields nil spans everywhere.
	ctx := context.Background()
	if s := SessionFrom(ctx); s != nil {
		t.Errorf("SessionFrom(empty ctx) = %v", s)
	}
	if sp := StartSpan(ctx, "phase"); sp != nil {
		t.Errorf("StartSpan without session = %v, want nil", sp)
	}
	if got := WithSession(ctx, nil); got != ctx {
		t.Error("WithSession(nil) must return ctx unchanged")
	}
}

func TestSpanTreeAndRender(t *testing.T) {
	reg := NewRegistry()
	sess := reg.StartSession(SessionInfo{Protocol: "intersection", Role: "receiver"})
	ctx := WithSession(context.Background(), sess)

	a := StartSpan(ctx, "hash-to-group")
	time.Sleep(time.Millisecond)
	a.End()
	a.End() // idempotent
	b := StartSpan(ctx, "bulk-encrypt")
	c := b.StartChild("worker")
	_ = c // deliberately left open: the session End must freeze it
	snap := sess.End(nil)

	if len(snap.Spans) != 2 {
		t.Fatalf("got %d top-level spans, want 2", len(snap.Spans))
	}
	rendered := RenderSpans(snap.Spans)
	for _, want := range []string{"hash-to-group=", "bulk-encrypt=", "bulk-encrypt/worker="} {
		if !strings.Contains(rendered, want) {
			t.Errorf("RenderSpans = %q, missing %q", rendered, want)
		}
	}
	if snap.Spans[0].Duration < time.Millisecond {
		t.Errorf("span duration = %v, want >= 1ms", snap.Spans[0].Duration)
	}
	// The open child was frozen by End: a later snapshot must agree.
	later := sess.Snapshot()
	if later.Spans[1].Children[0].Duration != snap.Spans[1].Children[0].Duration {
		t.Error("open child span kept running after session End")
	}
}

func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry()
	ok := reg.StartSession(SessionInfo{Protocol: "intersection", Role: "receiver", LocalSetSize: 3})
	bad := reg.StartSession(SessionInfo{Protocol: "equijoin", Role: "sender"})
	if ok.ID() == bad.ID() {
		t.Fatal("session ids not unique")
	}

	snap := reg.Snapshot()
	if snap.SessionsActive != 2 || snap.SessionsFinished != 0 {
		t.Fatalf("active/finished = %d/%d, want 2/0", snap.SessionsActive, snap.SessionsFinished)
	}

	ok.Counters().AddModExpEncrypts(4)
	okSnap := ok.End(nil)
	badSnap := bad.End(errors.New("peer vanished"))
	if okSnap.Outcome != "ok" || badSnap.Outcome != "peer vanished" {
		t.Errorf("outcomes = %q / %q", okSnap.Outcome, badSnap.Outcome)
	}

	snap = reg.Snapshot()
	if snap.SessionsActive != 0 || snap.SessionsFinished != 2 || snap.SessionsFailed != 1 {
		t.Errorf("active/finished/failed = %d/%d/%d, want 0/2/1",
			snap.SessionsActive, snap.SessionsFinished, snap.SessionsFailed)
	}
	if len(snap.Recent) != 2 {
		t.Errorf("recent ring holds %d, want 2", len(snap.Recent))
	}
	if snap.Global.ModExpEncrypts != 4 {
		t.Errorf("global modexp_encrypts = %d, want 4 (chained from session)", snap.Global.ModExpEncrypts)
	}

	// Double End must not corrupt the registry tallies.
	ok.End(nil)
	if snap := reg.Snapshot(); snap.SessionsFinished != 2 {
		t.Errorf("finished after double End = %d, want 2", snap.SessionsFinished)
	}
}

func TestRecentRingBounded(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < recentKeep+5; i++ {
		reg.StartSession(SessionInfo{Protocol: "intersection"}).End(nil)
	}
	snap := reg.Snapshot()
	if len(snap.Recent) != recentKeep {
		t.Errorf("recent ring holds %d, want %d", len(snap.Recent), recentKeep)
	}
	// The ring keeps the newest sessions.
	if got := snap.Recent[len(snap.Recent)-1].ID; got != uint64(recentKeep+5) {
		t.Errorf("newest recent id = %d, want %d", got, recentKeep+5)
	}
}

func TestHandlerTextAndJSON(t *testing.T) {
	reg := NewRegistry()
	sess := reg.StartSession(SessionInfo{Protocol: "intersection", Peer: "10.0.0.7:1234", Role: "sender"})
	sess.Counters().AddFrameSent(10, 14)
	sess.End(nil)

	h := reg.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default Content-Type = %q", ct)
	}
	for _, want := range []string{"sessions_finished 1", "wire_bytes_sent 14", "protocol=intersection", `peer="10.0.0.7:1234"`} {
		if !strings.Contains(body, want) {
			t.Errorf("text body missing %q:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	var snap RegistrySnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if snap.SessionsFinished != 1 || snap.Global.WireBytesSent != 14 {
		t.Errorf("decoded snapshot = %+v", snap)
	}

	// Accept-header negotiation selects JSON too.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Accept negotiation Content-Type = %q", ct)
	}
}

func TestDebugMuxRoutes(t *testing.T) {
	reg := NewRegistry()
	mux := reg.DebugMux()
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	reg := NewRegistry()
	reg.PublishExpvar("obs_test_registry")
	reg.PublishExpvar("obs_test_registry") // must not panic (expvar.Publish would)
}

func TestCountersConcurrent(t *testing.T) {
	root := NewCounters(nil)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			child := NewCounters(root)
			for j := 0; j < perWorker; j++ {
				child.AddModExpEncrypts(1)
				child.AddFrameSent(2, 3)
			}
		}()
	}
	wg.Wait()
	snap := root.Snapshot()
	if snap.ModExpEncrypts != workers*perWorker {
		t.Errorf("modexp_encrypts = %d, want %d", snap.ModExpEncrypts, workers*perWorker)
	}
	if snap.WireBytesSent != 3*workers*perWorker {
		t.Errorf("wire_bytes_sent = %d, want %d", snap.WireBytesSent, 3*workers*perWorker)
	}
}

// TestLifecycleCensus: lifecycle events land in the registry snapshot,
// render on /metrics in both encodings, and a nil receiver is inert.
func TestLifecycleCensus(t *testing.T) {
	reg := NewRegistry()
	lc := reg.Lifecycle()
	lc.AddAcceptRetry()
	lc.AddAcceptRetry()
	lc.AddSaturationReject()
	lc.AddHandshakeTimeout()
	lc.AddIdleTimeout()
	lc.AddSessionTimeout()
	lc.AddDrain()
	lc.AddDrainForced(3)
	lc.AddClientRetry()

	snap := reg.Snapshot().Lifecycle
	want := LifecycleSnapshot{
		AcceptRetries: 2, SaturationRejects: 1,
		HandshakeTimeouts: 1, IdleTimeouts: 1, SessionTimeouts: 1,
		Drains: 1, DrainForced: 1, DrainCancelled: 3, ClientRetries: 1,
	}
	if snap != want {
		t.Errorf("lifecycle snapshot = %+v, want %+v", snap, want)
	}

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, line := range []string{"accept_retries 2", "saturation_rejects 1", "idle_timeouts 1", "drain_cancelled_sessions 3", "client_retries 1"} {
		if !strings.Contains(body, line) {
			t.Errorf("text body missing %q:\n%s", line, body)
		}
	}

	rec = httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var decoded RegistrySnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.Lifecycle != want {
		t.Errorf("JSON lifecycle = %+v, want %+v", decoded.Lifecycle, want)
	}

	// Nil registry / nil lifecycle: every probe is a no-op.
	var nilReg *Registry
	nilReg.Lifecycle().AddIdleTimeout()
	nilReg.Lifecycle().AddDrainForced(5)
	if got := nilReg.Lifecycle().Snapshot(); got != (LifecycleSnapshot{}) {
		t.Errorf("nil lifecycle snapshot = %+v", got)
	}
}

// TestLifecycleConcurrent exercises the census under parallel writers so
// the race target covers it.
func TestLifecycleConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	const workers, each = 8, 500
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				reg.Lifecycle().AddIdleTimeout()
				reg.Lifecycle().AddClientRetry()
			}
		}()
	}
	wg.Wait()
	snap := reg.Lifecycle().Snapshot()
	if snap.IdleTimeouts != workers*each || snap.ClientRetries != workers*each {
		t.Errorf("lifecycle = %+v, want %d each", snap, workers*each)
	}
}
