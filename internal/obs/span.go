package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed phase of a protocol run (hash-to-group, bulk-encrypt,
// exchange, re-encrypt, match, …).  Spans form a tree under a Session's
// root.  A nil *Span is a valid no-op span: every method is nil-safe, so
// instrumented code can call StartSpan/End unconditionally and pay
// nothing when no session is attached.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	d        time.Duration
	ended    bool
	children []*Span
}

// StartChild opens a sub-span under s.  Returns nil if s is nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, freezing its duration, and closes any still-open
// children (so a phase abandoned on an error path freezes when its
// parent — ultimately the session root — ends).  Idempotent and
// nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.d = time.Since(s.start)
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		c.End()
	}
}

// snapshot copies the span tree; offsets are relative to base.  Open
// spans report their running duration.
func (s *Span) snapshot(base time.Time) SpanSnapshot {
	s.mu.Lock()
	snap := SpanSnapshot{Name: s.name, Offset: s.start.Sub(base), Duration: s.d}
	if !s.ended {
		snap.Duration = time.Since(s.start)
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		snap.Children = append(snap.Children, c.snapshot(base))
	}
	return snap
}

// SpanSnapshot is an immutable copy of one span.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	Offset   time.Duration  `json:"offset_ns"`
	Duration time.Duration  `json:"duration_ns"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// RenderSpans flattens a span forest into a compact one-line form like
// "hash-to-group=1.2ms bulk-encrypt=10ms exchange=0.3ms", suitable for a
// log line or an audit-trail annotation.  Nested spans are rendered as
// parent/child.  Order follows start offsets.
func RenderSpans(spans []SpanSnapshot) string {
	var parts []string
	var walk func(prefix string, ss []SpanSnapshot)
	walk = func(prefix string, ss []SpanSnapshot) {
		ordered := append([]SpanSnapshot(nil), ss...)
		sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Offset < ordered[j].Offset })
		for _, sp := range ordered {
			name := sp.Name
			if prefix != "" {
				name = prefix + "/" + name
			}
			parts = append(parts, fmt.Sprintf("%s=%s", name, sp.Duration.Round(time.Microsecond)))
			walk(name, sp.Children)
		}
	}
	walk("", spans)
	return strings.Join(parts, " ")
}

// sessionKey is the context key under which a *Session travels.
type sessionKey struct{}

// WithSession attaches a Session to ctx; protocol code running under the
// returned context attributes its counters and spans to that session.
func WithSession(ctx context.Context, s *Session) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, sessionKey{}, s)
}

// SessionFrom returns the Session attached to ctx, or nil.
func SessionFrom(ctx context.Context) *Session {
	s, _ := ctx.Value(sessionKey{}).(*Session)
	return s
}

// StartSpan opens a named phase span under the session attached to ctx.
// Without a session it returns nil — a no-op span — so this is free on
// uninstrumented runs.
func StartSpan(ctx context.Context, name string) *Span {
	if s := SessionFrom(ctx); s != nil {
		return s.root.StartChild(name)
	}
	return nil
}
