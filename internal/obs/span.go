package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed phase of a protocol run (hash-to-group, bulk-encrypt,
// exchange, re-encrypt, match, …).  Spans form a tree under a Session's
// root; every span carries the session's trace ID plus its own span ID
// and its parent's, so the two endpoints' trees for one protocol run can
// be stitched into a single cross-party trace.  A nil *Span is a valid
// no-op span: every method is nil-safe, so instrumented code can call
// StartSpan/End unconditionally and pay nothing when no session is
// attached.
type Span struct {
	name  string
	start time.Time
	id    SpanID
	sess  *Session // owning session; trace/parent identity and histograms

	mu       sync.Mutex
	parent   SpanID
	d        time.Duration
	ended    bool
	children []*Span
	attrs    []SpanAttr
}

// ID returns the span's process-unique identity (zero for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// StartChild opens a sub-span under s.  Returns nil if s is nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), id: nextSpanID(), parent: s.id, sess: s.sess}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Annotate attaches a key/value attribute to the span, stringifying the
// value immediately.  Attributes travel into the flight recorder and any
// exported trace, so they must never carry secrets (private exponents,
// encrypted-set material) — psilint's secretlog analyzer enforces this.
// Nil-safe no-op.
func (s *Span) Annotate(key string, value any) {
	if s == nil {
		return
	}
	v := fmt.Sprint(value)
	s.mu.Lock()
	s.attrs = append(s.attrs, SpanAttr{Key: key, Value: v})
	s.mu.Unlock()
}

// End closes the span, freezing its duration, and closes any still-open
// children (so a phase abandoned on an error path freezes when its
// parent — ultimately the session root — ends).  The first End also
// records the duration into the session's "phase/<name>" latency
// histogram, so histogram counts match span counts exactly.  Idempotent
// and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	first := !s.ended
	if first {
		s.ended = true
		s.d = time.Since(s.start)
	}
	d := s.d
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if first && s.sess != nil {
		s.sess.Latencies().Record(LatPhasePrefix+s.name, d)
	}
	for _, c := range kids {
		c.End()
	}
}

// snapshot copies the span tree; offsets are relative to base.  Open
// spans report their running duration.
func (s *Span) snapshot(base time.Time) SpanSnapshot {
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:     s.name,
		SpanID:   s.id,
		ParentID: s.parent,
		Offset:   s.start.Sub(base),
		Duration: s.d,
		Attrs:    append([]SpanAttr(nil), s.attrs...),
	}
	if !s.ended {
		snap.Duration = time.Since(s.start)
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		snap.Children = append(snap.Children, c.snapshot(base))
	}
	return snap
}

// SpanAttr is one key/value annotation on a span.
type SpanAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanSnapshot is an immutable copy of one span.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	SpanID   SpanID         `json:"span_id,omitempty"`
	ParentID SpanID         `json:"parent_id,omitempty"`
	Offset   time.Duration  `json:"offset_ns"`
	Duration time.Duration  `json:"duration_ns"`
	Attrs    []SpanAttr     `json:"attrs,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// RenderSpans flattens a span forest into a compact one-line form like
// "hash-to-group=1.2ms bulk-encrypt=10ms exchange=0.3ms", suitable for a
// log line or an audit-trail annotation.  Nested spans are rendered as
// parent/child.  Order follows start offsets.
func RenderSpans(spans []SpanSnapshot) string {
	var parts []string
	var walk func(prefix string, ss []SpanSnapshot)
	walk = func(prefix string, ss []SpanSnapshot) {
		ordered := append([]SpanSnapshot(nil), ss...)
		sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Offset < ordered[j].Offset })
		for _, sp := range ordered {
			name := sp.Name
			if prefix != "" {
				name = prefix + "/" + name
			}
			parts = append(parts, fmt.Sprintf("%s=%s", name, sp.Duration.Round(time.Microsecond)))
			walk(name, sp.Children)
		}
	}
	walk("", spans)
	return strings.Join(parts, " ")
}

// sessionKey is the context key under which a *Session travels.
type sessionKey struct{}

// WithSession attaches a Session to ctx; protocol code running under the
// returned context attributes its counters and spans to that session.
func WithSession(ctx context.Context, s *Session) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, sessionKey{}, s)
}

// SessionFrom returns the Session attached to ctx, or nil.
func SessionFrom(ctx context.Context) *Session {
	s, _ := ctx.Value(sessionKey{}).(*Session)
	return s
}

// StartSpan opens a named phase span under the session attached to ctx.
// Without a session it returns nil — a no-op span — so this is free on
// uninstrumented runs.
func StartSpan(ctx context.Context, name string) *Span {
	if s := SessionFrom(ctx); s != nil {
		return s.root.StartChild(name)
	}
	return nil
}
