package obs

import (
	"sync"
	"time"
)

// SessionInfo identifies one protocol run for reporting.
type SessionInfo struct {
	Protocol     string `json:"protocol"`
	Peer         string `json:"peer,omitempty"`
	Role         string `json:"role"` // "receiver" (party R) or "sender" (party S)
	LocalSetSize int    `json:"local_set_size"`
	PeerSetSize  int    `json:"peer_set_size"`
}

// Session is the attribution unit: one protocol run at one endpoint.
// Attach it to a context with WithSession before invoking a role
// function; the instrumented stack below records counters (chained to
// the registry's process-global level), latency histograms, and a span
// tree against it.  Every session starts with a freshly minted trace ID;
// if the peer's handshake header carries a different one, the session
// adopts it (AdoptRemoteTrace) so both endpoints report the initiator's
// trace.
type Session struct {
	reg      *Registry
	id       uint64
	start    time.Time
	counters Counters
	root     *Span

	mu      sync.Mutex
	info    SessionInfo
	trace   TraceID
	ended   bool
	d       time.Duration
	outcome string
}

// ID returns the registry-unique session id.
func (s *Session) ID() uint64 { return s.id }

// Info returns the identifying metadata.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.info
}

// Counters returns the session-level counter sink (parented to the
// registry's global level).
func (s *Session) Counters() *Counters { return &s.counters }

// Latencies returns the latency-histogram registry this session records
// into (the owning Registry's process-wide set).  Nil-safe: a nil
// session — or one without a registry — yields a nil, inert Latencies.
func (s *Session) Latencies() *Latencies {
	if s == nil || s.reg == nil {
		return nil
	}
	return &s.reg.lat
}

// TraceID returns the trace identity this session currently reports
// under (its own minted ID until AdoptRemoteTrace switches it).  A nil
// session reports the zero ("untraced") identity.
func (s *Session) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trace
}

// Root returns the session's root span ("session"), under which all
// phase spans nest.  Nil-safe: a nil session yields a nil, inert Span.
func (s *Session) Root() *Span {
	if s == nil {
		return nil
	}
	return s.root
}

// RootSpanID returns the root span's identity — the parent ID the peer's
// root span adopts when this session initiates the trace.  A nil session
// reports zero ("no span").
func (s *Session) RootSpanID() SpanID { return s.Root().ID() }

// AdoptRemoteTrace switches the session onto the trace identity minted
// by the remote initiator: the session reports under tid, and its root
// span becomes a child of the initiator's span parent (so the merged
// two-party trace nests correctly).  A zero tid, or one the session
// already carries, is a no-op — the initiator's own handshake echo lands
// here.
func (s *Session) AdoptRemoteTrace(tid TraceID, parent SpanID) {
	if s == nil || tid.IsZero() {
		return
	}
	s.mu.Lock()
	same := s.trace == tid
	if !same {
		s.trace = tid
	}
	s.mu.Unlock()
	if same {
		return
	}
	s.root.mu.Lock()
	s.root.parent = parent
	s.root.mu.Unlock()
}

// SetInfo replaces the session metadata (e.g. once the peer's set size
// is learned from its header).
func (s *Session) SetInfo(info SessionInfo) {
	s.mu.Lock()
	s.info = info
	s.mu.Unlock()
}

// End closes the session with the run's outcome (nil error = "ok"),
// moves it from the registry's active set into the recent ring and the
// flight recorder, and returns the final snapshot.  Calling End again
// returns a fresh snapshot without touching the registry.  A nil session
// is inert and yields a zero snapshot.
func (s *Session) End(err error) SessionSnapshot {
	if s == nil {
		return SessionSnapshot{}
	}
	s.root.End()
	s.mu.Lock()
	already := s.ended
	if !already {
		s.ended = true
		s.d = time.Since(s.start)
		if err != nil {
			s.outcome = err.Error()
		} else {
			s.outcome = "ok"
		}
	}
	s.mu.Unlock()
	snap := s.Snapshot()
	if !already && s.reg != nil {
		r := s.reg
		r.mu.Lock()
		delete(r.active, s.id)
		r.finished++
		if err != nil {
			r.failed++
		}
		r.recent = append(r.recent, snap)
		if len(r.recent) > recentKeep {
			r.recent = r.recent[len(r.recent)-recentKeep:]
		}
		r.mu.Unlock()
		r.flight.Add(snap)
	}
	return snap
}

// Snapshot copies the session's current state; safe while the run is
// still in flight (duration and spans report running values).
func (s *Session) Snapshot() SessionSnapshot {
	s.mu.Lock()
	snap := SessionSnapshot{
		ID:       s.id,
		TraceID:  s.trace,
		Info:     s.info,
		Start:    s.start,
		Duration: s.d,
		Outcome:  s.outcome,
	}
	ended := s.ended
	s.mu.Unlock()
	if !ended {
		snap.Duration = time.Since(s.start)
	}
	snap.Counters = s.counters.Snapshot()
	root := s.root.snapshot(s.start)
	snap.RootSpanID = root.SpanID
	snap.RootParentID = root.ParentID
	snap.Spans = root.Children
	return snap
}

// SessionSnapshot is an immutable copy of one session.
type SessionSnapshot struct {
	ID           uint64          `json:"id"`
	TraceID      TraceID         `json:"trace_id,omitempty"`
	RootSpanID   SpanID          `json:"root_span_id,omitempty"`
	RootParentID SpanID          `json:"root_parent_id,omitempty"`
	Info         SessionInfo     `json:"info"`
	Start        time.Time       `json:"start"`
	Duration     time.Duration   `json:"duration_ns"`
	Outcome      string          `json:"outcome,omitempty"` // "" while running, "ok", or the error text
	Counters     CounterSnapshot `json:"counters"`
	Spans        []SpanSnapshot  `json:"spans,omitempty"`
}

// recentKeep bounds the finished-session ring kept for /metrics.
const recentKeep = 8

// Registry owns the process-global counter level, the latency-histogram
// set, the flight recorder, and the set of live and recently finished
// sessions.  A zero Registry is not usable; call NewRegistry (or use
// Default).
type Registry struct {
	start     time.Time
	global    Counters
	lifecycle Lifecycle
	cache     CacheStats
	lat       Latencies
	flight    FlightRecorder

	mu       sync.Mutex
	seq      uint64
	active   map[uint64]*Session
	finished int64
	failed   int64
	recent   []SessionSnapshot
}

// NewRegistry returns an empty registry with the flight recorder at its
// default byte budget.
func NewRegistry() *Registry {
	r := &Registry{start: time.Now(), active: make(map[uint64]*Session)}
	r.flight.SetBudget(DefaultFlightBudget)
	return r
}

// Global returns the process-global counter level.  Counting directly
// against it (outside any session) is allowed.
func (r *Registry) Global() *Counters { return &r.global }

// Lifecycle returns the registry's session-lifecycle census (timeouts,
// rejects, retries, drains).  A nil registry yields a nil — and therefore
// inert — Lifecycle, so callers may write r.Lifecycle().AddIdleTimeout()
// unconditionally.
func (r *Registry) Lifecycle() *Lifecycle {
	if r == nil {
		return nil
	}
	return &r.lifecycle
}

// Cache returns the registry's encrypted-set cache census.  A nil
// registry yields a nil — and therefore inert — CacheStats, so callers
// may write r.Cache().AddHit() unconditionally.
func (r *Registry) Cache() *CacheStats {
	if r == nil {
		return nil
	}
	return &r.cache
}

// Latencies returns the registry's process-wide latency-histogram set.
// A nil registry yields a nil — and therefore inert — Latencies.
func (r *Registry) Latencies() *Latencies {
	if r == nil {
		return nil
	}
	return &r.lat
}

// Flight returns the registry's session flight recorder.  A nil registry
// yields a nil — and therefore inert — FlightRecorder.
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	return &r.flight
}

// StartSession registers a new live session whose counters chain into
// the registry's global level.  The session mints a fresh trace ID; the
// wire handshake propagates it (initiator) or replaces it
// (AdoptRemoteTrace, responder).
func (r *Registry) StartSession(info SessionInfo) *Session {
	now := time.Now()
	s := &Session{
		reg:      r,
		info:     info,
		start:    now,
		trace:    NewTraceID(),
		counters: Counters{parent: &r.global},
	}
	s.root = &Span{name: "session", start: now, id: nextSpanID(), sess: s}
	r.mu.Lock()
	r.seq++
	s.id = r.seq
	r.active[s.id] = s
	r.mu.Unlock()
	return s
}

// RegistrySnapshot is a point-in-time copy of the whole registry.
type RegistrySnapshot struct {
	UptimeSeconds    float64                      `json:"uptime_seconds"`
	Global           CounterSnapshot              `json:"global"`
	Lifecycle        LifecycleSnapshot            `json:"lifecycle"`
	Cache            CacheSnapshot                `json:"cache"`
	Latencies        map[string]HistogramSnapshot `json:"latencies,omitempty"`
	SessionsActive   int                          `json:"sessions_active"`
	SessionsFinished int64                        `json:"sessions_finished"`
	SessionsFailed   int64                        `json:"sessions_failed"`
	Active           []SessionSnapshot            `json:"active,omitempty"`
	Recent           []SessionSnapshot            `json:"recent,omitempty"`
}

// Snapshot copies the registry: global counters, latency histograms,
// live sessions, and the recent-finished ring.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	live := make([]*Session, 0, len(r.active))
	for _, s := range r.active {
		live = append(live, s)
	}
	snap := RegistrySnapshot{
		UptimeSeconds:    time.Since(r.start).Seconds(),
		SessionsActive:   len(live),
		SessionsFinished: r.finished,
		SessionsFailed:   r.failed,
		Recent:           append([]SessionSnapshot(nil), r.recent...),
	}
	r.mu.Unlock()
	snap.Global = r.global.Snapshot()
	snap.Lifecycle = r.lifecycle.Snapshot()
	snap.Cache = r.cache.Snapshot()
	snap.Latencies = r.lat.Snapshot()
	for _, s := range live {
		snap.Active = append(snap.Active, s.Snapshot())
	}
	return snap
}

// std is the process-default registry used by cmd/psiserver.
var std = NewRegistry()

// Default returns the process-default registry.
func Default() *Registry { return std }
