package obs

import (
	"sync"
	"time"
)

// SessionInfo identifies one protocol run for reporting.
type SessionInfo struct {
	Protocol     string `json:"protocol"`
	Peer         string `json:"peer,omitempty"`
	Role         string `json:"role"` // "receiver" (party R) or "sender" (party S)
	LocalSetSize int    `json:"local_set_size"`
	PeerSetSize  int    `json:"peer_set_size"`
}

// Session is the attribution unit: one protocol run at one endpoint.
// Attach it to a context with WithSession before invoking a role
// function; the instrumented stack below records counters (chained to
// the registry's process-global level) and a span tree against it.
type Session struct {
	reg      *Registry
	id       uint64
	info     SessionInfo
	start    time.Time
	counters Counters
	root     *Span

	mu      sync.Mutex
	ended   bool
	d       time.Duration
	outcome string
}

// ID returns the registry-unique session id.
func (s *Session) ID() uint64 { return s.id }

// Info returns the identifying metadata.
func (s *Session) Info() SessionInfo { return s.info }

// Counters returns the session-level counter sink (parented to the
// registry's global level).
func (s *Session) Counters() *Counters { return &s.counters }

// SetInfo replaces the session metadata (e.g. once the peer's set size
// is learned from its header).
func (s *Session) SetInfo(info SessionInfo) {
	s.mu.Lock()
	s.info = info
	s.mu.Unlock()
}

// End closes the session with the run's outcome (nil error = "ok"),
// moves it from the registry's active set into the recent ring, and
// returns the final snapshot.  Calling End again returns a fresh
// snapshot without touching the registry.
func (s *Session) End(err error) SessionSnapshot {
	s.root.End()
	s.mu.Lock()
	already := s.ended
	if !already {
		s.ended = true
		s.d = time.Since(s.start)
		if err != nil {
			s.outcome = err.Error()
		} else {
			s.outcome = "ok"
		}
	}
	s.mu.Unlock()
	snap := s.Snapshot()
	if !already && s.reg != nil {
		r := s.reg
		r.mu.Lock()
		delete(r.active, s.id)
		r.finished++
		if err != nil {
			r.failed++
		}
		r.recent = append(r.recent, snap)
		if len(r.recent) > recentKeep {
			r.recent = r.recent[len(r.recent)-recentKeep:]
		}
		r.mu.Unlock()
	}
	return snap
}

// Snapshot copies the session's current state; safe while the run is
// still in flight (duration and spans report running values).
func (s *Session) Snapshot() SessionSnapshot {
	s.mu.Lock()
	snap := SessionSnapshot{
		ID:       s.id,
		Info:     s.info,
		Start:    s.start,
		Duration: s.d,
		Outcome:  s.outcome,
	}
	ended := s.ended
	s.mu.Unlock()
	if !ended {
		snap.Duration = time.Since(s.start)
	}
	snap.Counters = s.counters.Snapshot()
	root := s.root.snapshot(s.start)
	snap.Spans = root.Children
	return snap
}

// SessionSnapshot is an immutable copy of one session.
type SessionSnapshot struct {
	ID       uint64          `json:"id"`
	Info     SessionInfo     `json:"info"`
	Start    time.Time       `json:"start"`
	Duration time.Duration   `json:"duration_ns"`
	Outcome  string          `json:"outcome,omitempty"` // "" while running, "ok", or the error text
	Counters CounterSnapshot `json:"counters"`
	Spans    []SpanSnapshot  `json:"spans,omitempty"`
}

// recentKeep bounds the finished-session ring kept for /metrics.
const recentKeep = 8

// Registry owns the process-global counter level and the set of live and
// recently finished sessions.  A zero Registry is not usable; call
// NewRegistry (or use Default).
type Registry struct {
	start     time.Time
	global    Counters
	lifecycle Lifecycle
	cache     CacheStats

	mu       sync.Mutex
	seq      uint64
	active   map[uint64]*Session
	finished int64
	failed   int64
	recent   []SessionSnapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{start: time.Now(), active: make(map[uint64]*Session)}
}

// Global returns the process-global counter level.  Counting directly
// against it (outside any session) is allowed.
func (r *Registry) Global() *Counters { return &r.global }

// Lifecycle returns the registry's session-lifecycle census (timeouts,
// rejects, retries, drains).  A nil registry yields a nil — and therefore
// inert — Lifecycle, so callers may write r.Lifecycle().AddIdleTimeout()
// unconditionally.
func (r *Registry) Lifecycle() *Lifecycle {
	if r == nil {
		return nil
	}
	return &r.lifecycle
}

// Cache returns the registry's encrypted-set cache census.  A nil
// registry yields a nil — and therefore inert — CacheStats, so callers
// may write r.Cache().AddHit() unconditionally.
func (r *Registry) Cache() *CacheStats {
	if r == nil {
		return nil
	}
	return &r.cache
}

// StartSession registers a new live session whose counters chain into
// the registry's global level.
func (r *Registry) StartSession(info SessionInfo) *Session {
	now := time.Now()
	s := &Session{
		reg:      r,
		info:     info,
		start:    now,
		counters: Counters{parent: &r.global},
		root:     &Span{name: "session", start: now},
	}
	r.mu.Lock()
	r.seq++
	s.id = r.seq
	r.active[s.id] = s
	r.mu.Unlock()
	return s
}

// RegistrySnapshot is a point-in-time copy of the whole registry.
type RegistrySnapshot struct {
	UptimeSeconds    float64           `json:"uptime_seconds"`
	Global           CounterSnapshot   `json:"global"`
	Lifecycle        LifecycleSnapshot `json:"lifecycle"`
	Cache            CacheSnapshot     `json:"cache"`
	SessionsActive   int               `json:"sessions_active"`
	SessionsFinished int64             `json:"sessions_finished"`
	SessionsFailed   int64             `json:"sessions_failed"`
	Active           []SessionSnapshot `json:"active,omitempty"`
	Recent           []SessionSnapshot `json:"recent,omitempty"`
}

// Snapshot copies the registry: global counters, live sessions, and the
// recent-finished ring.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	live := make([]*Session, 0, len(r.active))
	for _, s := range r.active {
		live = append(live, s)
	}
	snap := RegistrySnapshot{
		UptimeSeconds:    time.Since(r.start).Seconds(),
		SessionsActive:   len(live),
		SessionsFinished: r.finished,
		SessionsFailed:   r.failed,
		Recent:           append([]SessionSnapshot(nil), r.recent...),
	}
	r.mu.Unlock()
	snap.Global = r.global.Snapshot()
	snap.Lifecycle = r.lifecycle.Snapshot()
	snap.Cache = r.cache.Snapshot()
	for _, s := range live {
		snap.Active = append(snap.Active, s.Snapshot())
	}
	return snap
}

// std is the process-default registry used by cmd/psiserver.
var std = NewRegistry()

// Default returns the process-default registry.
func Default() *Registry { return std }
