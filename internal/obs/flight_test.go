package obs

import (
	"strings"
	"testing"
)

// flightSnap builds a minimal snapshot with a known identity; extra span
// names pad the estimated size.
func flightSnap(id uint64, tid TraceID, spanNames ...string) SessionSnapshot {
	s := SessionSnapshot{ID: id, TraceID: tid, Info: SessionInfo{Protocol: "intersection"}}
	for _, name := range spanNames {
		s.Spans = append(s.Spans, SpanSnapshot{Name: name})
	}
	return s
}

func TestFlightRecorderRetainsAndLists(t *testing.T) {
	var f FlightRecorder
	f.SetBudget(1 << 16)
	tid := NewTraceID()
	f.Add(flightSnap(1, tid))
	f.Add(flightSnap(2, tid))
	f.Add(flightSnap(3, NewTraceID()))

	if f.Len() != 3 || f.Evicted() != 0 {
		t.Fatalf("len/evicted = %d/%d, want 3/0", f.Len(), f.Evicted())
	}
	snaps := f.Snapshots()
	if len(snaps) != 3 || snaps[0].ID != 1 || snaps[2].ID != 3 {
		t.Errorf("Snapshots order = %v, want oldest first", []uint64{snaps[0].ID, snaps[1].ID, snaps[2].ID})
	}
	if got, ok := f.ByID(2); !ok || got.ID != 2 {
		t.Errorf("ByID(2) = %v/%v", got.ID, ok)
	}
	if _, ok := f.ByID(99); ok {
		t.Error("ByID(99) found a session that was never added")
	}
	if got := f.ByTrace(tid); len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Errorf("ByTrace = %d sessions, want the 2 sharing the id", len(got))
	}
	if got := f.ByTrace(TraceID{}); got != nil {
		t.Error("ByTrace(zero) must return nil, not scan")
	}
	if used := f.UsedBytes(); used <= 0 || used > f.Budget() {
		t.Errorf("used = %d, want within (0, %d]", used, f.Budget())
	}
}

func TestFlightRecorderEvictsOldestFirst(t *testing.T) {
	var f FlightRecorder
	one := estimateSnapshotSize(flightSnap(0, TraceID{}))
	f.SetBudget(3 * one) // room for exactly three span-less snapshots

	for id := uint64(1); id <= 5; id++ {
		f.Add(flightSnap(id, NewTraceID()))
	}
	if f.Len() != 3 || f.Evicted() != 2 {
		t.Fatalf("len/evicted = %d/%d, want 3/2", f.Len(), f.Evicted())
	}
	snaps := f.Snapshots()
	if snaps[0].ID != 3 || snaps[2].ID != 5 {
		t.Errorf("retained ids = %d..%d, want 3..5 (oldest evicted)", snaps[0].ID, snaps[2].ID)
	}
	// Shrinking the budget evicts down to it immediately.
	f.SetBudget(one)
	if f.Len() != 1 || f.Snapshots()[0].ID != 5 {
		t.Errorf("after shrink: len=%d first=%d, want the newest only", f.Len(), f.Snapshots()[0].ID)
	}
}

func TestFlightRecorderOversizedSnapshotDropped(t *testing.T) {
	var f FlightRecorder
	f.SetBudget(300) // below one snapshot with a long-named span
	f.Add(flightSnap(1, NewTraceID(), strings.Repeat("x", 512)))
	if f.Len() != 0 || f.Evicted() != 1 {
		t.Errorf("len/evicted = %d/%d, want 0/1 (dropped, counted)", f.Len(), f.Evicted())
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	var f FlightRecorder
	f.SetBudget(1 << 16)
	f.Add(flightSnap(1, NewTraceID()))
	evictedBefore := f.Evicted()

	// Budget 0 drops everything retained and disables the recorder.
	f.SetBudget(0)
	if f.Len() != 0 || f.UsedBytes() != 0 {
		t.Errorf("after disable: len=%d used=%d, want 0/0", f.Len(), f.UsedBytes())
	}
	if f.Evicted() != evictedBefore+1 {
		t.Errorf("evicted = %d, want %d (the dropped entry counts)", f.Evicted(), evictedBefore+1)
	}
	f.Add(flightSnap(2, NewTraceID()))
	if f.Len() != 0 {
		t.Error("disabled recorder must not retain")
	}
}

func TestFlightRecorderNilInert(t *testing.T) {
	var f *FlightRecorder
	f.SetBudget(100)
	f.Add(SessionSnapshot{})
	if f.Len() != 0 || f.Evicted() != 0 || f.UsedBytes() != 0 || f.Budget() != 0 {
		t.Error("nil recorder must report zeros")
	}
	if f.Snapshots() != nil {
		t.Error("nil recorder Snapshots must be nil")
	}
	if _, ok := f.ByID(1); ok {
		t.Error("nil recorder ByID must miss")
	}
	if f.ByTrace(NewTraceID()) != nil {
		t.Error("nil recorder ByTrace must be nil")
	}
}

// TestSessionEndFeedsFlight: ending a registry session lands its
// snapshot in the registry's flight recorder (the default budget is on).
func TestSessionEndFeedsFlight(t *testing.T) {
	reg := NewRegistry()
	if got := reg.Flight().Budget(); got != DefaultFlightBudget {
		t.Fatalf("default budget = %d, want %d", got, DefaultFlightBudget)
	}
	sess := reg.StartSession(SessionInfo{Protocol: "intersection", Role: "receiver"})
	id, tid := sess.ID(), sess.TraceID()
	sess.End(nil)
	sess.End(nil) // double End must not double-record

	if reg.Flight().Len() != 1 {
		t.Fatalf("flight holds %d traces, want 1", reg.Flight().Len())
	}
	got, ok := reg.Flight().ByID(id)
	if !ok || got.TraceID != tid || got.Outcome != "ok" {
		t.Errorf("retained = %+v/%v, want session %d under %s", got, ok, id, tid)
	}
}
