package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-bucketed latency histogram in the HDR
// style: a fixed array of atomic counters whose bucket boundaries grow
// geometrically with 16 linear sub-buckets per power of two, giving a
// worst-case relative quantile error of 1/16 (≈6%) across the whole
// nanoseconds-to-minutes range.  Record is one atomic add on the bucket
// plus two on the count/sum totals — no locks, no allocation — so the
// protocol hot path can feed it per frame and per chunk.
//
// All methods are safe for concurrent use and inert on a nil receiver.
// A Histogram contains atomics and must not be copied after first use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Bucket layout: durations are measured in nanoseconds.  Values 0–15ns
// land in the 16 linear buckets; above that, each power of two [2^e,
// 2^(e+1)) splits into 16 linear sub-buckets of width 2^(e-4).  The top
// octave is capped at 2^histMaxExp ns (≈2.4 hours); anything longer
// clamps into the final bucket.
const (
	histSubBits = 4                     // 2^4 = 16 sub-buckets per octave
	histSub     = 1 << histSubBits      // sub-buckets per octave
	histMinExp  = histSubBits           // first full octave: [16, 32) ns
	histMaxExp  = 43                    // clamp above 2^43 ns ≈ 2.4 h
	histBuckets = histSub +             // linear region 0–15 ns
		(histMaxExp-histMinExp)*histSub // one run of 16 per octave
)

// histIndex maps a duration in nanoseconds to its bucket.
func histIndex(ns int64) int {
	if ns < histSub {
		if ns < 0 {
			return 0
		}
		return int(ns)
	}
	exp := bits.Len64(uint64(ns)) - 1 // ns ∈ [2^exp, 2^(exp+1))
	if exp >= histMaxExp {
		return histBuckets - 1
	}
	sub := int(ns>>(exp-histSubBits)) - histSub
	return histSub + (exp-histMinExp)*histSub + sub
}

// histBound returns the exclusive upper bound of bucket idx in
// nanoseconds — the value quantile estimates report, so an estimate
// never understates the true latency by more than one sub-bucket.
func histBound(idx int) int64 {
	if idx < histSub {
		return int64(idx) + 1
	}
	exp := idx/histSub - 1 + histMinExp
	sub := int64(idx % histSub)
	return 1<<exp + (sub+1)<<(exp-histSubBits)
}

// Record adds one observation.  Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[histIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Snapshot returns a point-in-time copy with precomputed quantiles.
// Each field is read atomically; cross-field skew under concurrent load
// is possible and fine for reporting.  Nil yields a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var counts [histBuckets]int64
	total := int64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	snap := HistogramSnapshot{Count: h.count.Load(), Sum: time.Duration(h.sum.Load())}
	if total == 0 {
		return snap
	}
	// Quantiles resolve against the bucket census actually read, not the
	// (possibly newer) count field, so they are internally consistent.
	quantile := func(q float64) time.Duration {
		rank := int64(q * float64(total))
		if rank >= total {
			rank = total - 1
		}
		cum := int64(0)
		for i, c := range counts {
			cum += c
			if cum > rank {
				return time.Duration(histBound(i))
			}
		}
		return time.Duration(histBound(histBuckets - 1))
	}
	snap.P50 = quantile(0.50)
	snap.P90 = quantile(0.90)
	snap.P99 = quantile(0.99)
	for i := histBuckets - 1; i >= 0; i-- {
		if counts[i] > 0 {
			snap.Max = time.Duration(histBound(i))
			break
		}
	}
	if snap.Count > 0 {
		snap.Mean = snap.Sum / time.Duration(snap.Count)
	}
	return snap
}

// HistogramSnapshot is a point-in-time copy of one Histogram: the
// observation count, total, mean, and upper-bound quantile estimates
// (each at most one sub-bucket — ≈6% — above the true value).
type HistogramSnapshot struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Well-known latency series.  Phase histograms (LatPhasePrefix + span
// name) are fed automatically when a span ends; the event series are fed
// directly by the instrumented stack.
const (
	// LatPhasePrefix prefixes the per-phase histograms fed by span ends:
	// "phase/bulk-encrypt", "phase/session", …
	LatPhasePrefix = "phase/"
	// LatTransportSend times each frame's Conn.Send — the sender-side
	// stall census (backpressure, link serialization, peer slowness).
	LatTransportSend = "transport/send"
	// LatTransportRecv times each frame's Conn.Recv — the receive-side
	// stall census (waiting on the peer's compute or the link).
	LatTransportRecv = "transport/recv"
	// LatChunkPipeline times one streamed chunk through its pipeline
	// stage (exponentiate-and-ship, or validate-and-re-encrypt).
	LatChunkPipeline = "chunk/pipeline"
	// LatCacheHit times the sender precompute phase when the encrypted
	// -set cache replayed it.
	LatCacheHit = "cache/hit-path"
	// LatCacheMiss times the sender precompute phase when it had to run
	// in full (and, typically, populate the cache).
	LatCacheMiss = "cache/miss-path"
	// LatCacheUpgrade times the sender precompute phase when a stale
	// cached set was upgraded in place by re-encrypting only the delta.
	LatCacheUpgrade = "cache/upgrade-path"
	// LatDeltaPush times one standing-query update on the sender side:
	// delta reconstruction, ApplyDelta, and the SubUpdate/SubAck round.
	LatDeltaPush = "delta/push"
	// LatDeltaApply times one standing-query update on the receiver
	// side: re-encrypting the pushed churn and refreshing the result.
	LatDeltaApply = "delta/apply"
)

// Latencies is a registry of named Histograms.  Histogram creation is a
// once-per-name sync.Map insert; every Record thereafter is lock-free.
// All methods are safe for concurrent use and inert on a nil receiver.
type Latencies struct {
	m sync.Map // string -> *Histogram
}

// Hist returns the named histogram, creating it on first use.  Nil
// receivers return a nil — and therefore inert — Histogram.
func (l *Latencies) Hist(name string) *Histogram {
	if l == nil {
		return nil
	}
	if h, ok := l.m.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := l.m.LoadOrStore(name, &Histogram{})
	return h.(*Histogram)
}

// Record adds one observation to the named histogram.
func (l *Latencies) Record(name string, d time.Duration) {
	if l == nil {
		return
	}
	l.Hist(name).Record(d)
}

// Snapshot copies every named histogram.  Nil yields an empty map.
func (l *Latencies) Snapshot() map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot)
	if l == nil {
		return out
	}
	l.m.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return out
}
