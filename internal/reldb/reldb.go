// Package reldb is a miniature in-memory relational engine: the
// "Database" box of the paper's Figure 1.
//
// The paper's setting is two autonomous enterprises, each holding
// relational tables (T_R, T_S) with a shared join attribute A.  The
// protocols themselves only ever see opaque value bytes and serialized
// ext(v) payloads; this package supplies everything around them — typed
// schemas, tables, selection/projection, group-by counts for verifying
// the medical application, plaintext reference joins for testing, and
// the deterministic serialization that carries ext(v) (the set of rows
// of T_S matching a value) through the equijoin protocol.
package reldb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Type enumerates column types.
type Type uint8

// Column types.
const (
	TypeInvalid Type = iota
	TypeString
	TypeInt
	TypeBool
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Value is a dynamically typed cell value.
type Value struct {
	typ Type
	s   string
	i   int64
	b   bool
}

// String builds a string Value.
func String(s string) Value { return Value{typ: TypeString, s: s} }

// Int builds an integer Value.
func Int(i int64) Value { return Value{typ: TypeInt, i: i} }

// Bool builds a boolean Value.
func Bool(b bool) Value { return Value{typ: TypeBool, b: b} }

// Type returns the value's type.
func (v Value) Type() Type { return v.typ }

// AsString returns the string payload; it panics on type mismatch, like
// an invalid interface assertion would.
func (v Value) AsString() string {
	v.mustBe(TypeString)
	return v.s
}

// AsInt returns the integer payload.
func (v Value) AsInt() int64 {
	v.mustBe(TypeInt)
	return v.i
}

// AsBool returns the boolean payload.
func (v Value) AsBool() bool {
	v.mustBe(TypeBool)
	return v.b
}

func (v Value) mustBe(t Type) {
	if v.typ != t {
		panic(fmt.Sprintf("reldb: value is %v, not %v", v.typ, t))
	}
}

// Equal reports deep equality.
func (v Value) Equal(o Value) bool { return v == o }

// GoString renders the value for debugging and test output.
func (v Value) GoString() string { return v.String() }

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.typ {
	case TypeString:
		return v.s
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeBool:
		return strconv.FormatBool(v.b)
	default:
		return "<invalid>"
	}
}

// Encode serializes the value deterministically: a type byte followed by
// the payload.  Used both as protocol value bytes (the attribute A) and
// inside serialized rows.
func (v Value) Encode() []byte {
	switch v.typ {
	case TypeString:
		return append([]byte{byte(TypeString)}, v.s...)
	case TypeInt:
		var buf [9]byte
		buf[0] = byte(TypeInt)
		binary.BigEndian.PutUint64(buf[1:], uint64(v.i))
		return buf[:]
	case TypeBool:
		b := byte(0)
		if v.b {
			b = 1
		}
		return []byte{byte(TypeBool), b}
	default:
		return []byte{byte(TypeInvalid)}
	}
}

// DecodeValue inverts Value.Encode.
func DecodeValue(data []byte) (Value, error) {
	if len(data) == 0 {
		return Value{}, errors.New("reldb: empty value encoding")
	}
	switch Type(data[0]) {
	case TypeString:
		return String(string(data[1:])), nil
	case TypeInt:
		if len(data) != 9 {
			return Value{}, fmt.Errorf("reldb: int value of %d bytes", len(data))
		}
		return Int(int64(binary.BigEndian.Uint64(data[1:]))), nil
	case TypeBool:
		if len(data) != 2 || data[1] > 1 {
			return Value{}, errors.New("reldb: malformed bool value")
		}
		return Bool(data[1] == 1), nil
	default:
		return Value{}, fmt.Errorf("reldb: unknown value type %d", data[0])
	}
}

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema, rejecting duplicate or empty column names.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, errors.New("reldb: empty column name")
		}
		if c.Type != TypeString && c.Type != TypeInt && c.Type != TypeBool {
			return nil, fmt.Errorf("reldb: column %q has invalid type", c.Name)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("reldb: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema panicking on error, for literals in tests and
// examples.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// NumColumns returns the arity.
func (s *Schema) NumColumns() int { return len(s.cols) }

// ColumnIndex returns the position of the named column, or an error.
func (s *Schema) ColumnIndex(name string) (int, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("reldb: no column %q", name)
	}
	return i, nil
}

// Row is one tuple; its arity and types must match the table schema.
type Row []Value

// Encode serializes a row as length-prefixed encoded values.
func (r Row) Encode() []byte {
	var out []byte
	for _, v := range r {
		enc := v.Encode()
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(enc)))
		out = append(out, l[:]...)
		out = append(out, enc...)
	}
	return out
}

// DecodeRow inverts Row.Encode given the expected arity.
func DecodeRow(data []byte, arity int) (Row, error) {
	row := make(Row, 0, arity)
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, errors.New("reldb: truncated row")
		}
		l := binary.BigEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < l {
			return nil, errors.New("reldb: truncated row value")
		}
		v, err := DecodeValue(data[:l])
		if err != nil {
			return nil, err
		}
		row = append(row, v)
		data = data[l:]
	}
	if len(row) != arity {
		return nil, fmt.Errorf("reldb: row has %d values, want %d", len(row), arity)
	}
	return row, nil
}

// versionCounter issues table data versions.  It is process-global — a
// single sequence shared by every table and every derived table — and
// seeded from the wall clock, so a version can never repeat for
// distinct contents: not across two derived tables that happen to share
// a row count, not across re-derivations of the same query after a
// mutation, and (best-effort, assuming a sane clock) not across process
// restarts reloading the same source file.  Consumers that key
// precomputed state by version (the encrypted-set cache, the wire
// handshake's SetVersion tag) rely on exactly that invariant.
var versionCounter atomic.Uint64

func init() { versionCounter.Store(uint64(time.Now().UnixNano())) }

// nextVersion issues a fresh, strictly increasing data version.
func nextVersion() uint64 { return versionCounter.Add(1) }

// Table is an in-memory relation.  Mutations (Insert, Delete) and reads
// are safe for concurrent use: a long-lived server can keep answering
// protocol sessions while the enterprise's application mutates the
// table, which is the setting the standing-query machinery (DeltaSince,
// Wait) exists for.
type Table struct {
	name    string
	schema  *Schema
	version uint64 // read/written via atomics; see Version

	mu      sync.RWMutex
	rows    []Row
	log     []changeEntry // bounded row-level mutation log; see DeltaSince
	logSeal uint64        // oldest version DeltaSince can still answer from
	derived bool          // Select/Project/Join output: no per-row provenance
	watch   chan struct{} // closed and replaced on every mutation; see Changed
}

// NewTable creates an empty table.
func NewTable(name string, schema *Schema) *Table {
	t := &Table{name: name, schema: schema}
	t.stampVersion()
	t.logSeal = t.Version()
	return t
}

// stampVersion records a fresh global version on the table.
func (t *Table) stampVersion() { atomic.StoreUint64(&t.version, nextVersion()) }

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Version is the table's monotonic data version: it increases on every
// mutation and never repeats for distinct contents of the same table.
// Versions are drawn from a process-global sequence, so derived tables
// (Select, Project, Join) also carry versions that can never collide
// with any other table state — the version is an identity for the exact
// contents, not a row count.  Consumers that precompute state derived
// from the table — notably the encrypted-set cache
// (core.SenderSetCache) — key it by this version so a change to the
// underlying private database invalidates them.  Version is safe for
// concurrent use with mutations.
func (t *Table) Version() uint64 { return atomic.LoadUint64(&t.version) }

// Insert appends a row after arity and type checking.
func (t *Table) Insert(row Row) error {
	if len(row) != t.schema.NumColumns() {
		return fmt.Errorf("reldb: row arity %d, schema arity %d", len(row), t.schema.NumColumns())
	}
	for i, v := range row {
		if v.Type() != t.schema.cols[i].Type {
			return fmt.Errorf("reldb: column %q expects %v, got %v",
				t.schema.cols[i].Name, t.schema.cols[i].Type, v.Type())
		}
	}
	t.mu.Lock()
	t.rows = append(t.rows, append(Row(nil), row...))
	t.stampVersion()
	t.logAppendLocked(changeEntry{version: t.Version(), insert: true, row: t.rows[len(t.rows)-1]})
	t.mu.Unlock()
	t.notify()
	return nil
}

// Delete removes every row satisfying pred and returns the number
// removed.  All rows removed by one call share a single version bump —
// the batch is one mutation as far as DeltaSince consumers are
// concerned.
func (t *Table) Delete(pred func(Row) bool) int {
	t.mu.Lock()
	kept := t.rows[:0]
	var removed []Row
	for _, r := range t.rows {
		if pred(r) {
			removed = append(removed, r)
		} else {
			kept = append(kept, r)
		}
	}
	t.rows = kept
	if len(removed) > 0 {
		t.stampVersion()
		v := t.Version()
		for _, r := range removed {
			t.logAppendLocked(changeEntry{version: v, insert: false, row: r})
		}
	}
	t.mu.Unlock()
	if len(removed) > 0 {
		t.notify()
	}
	return len(removed)
}

// MustInsert is Insert panicking on error, for test and example fixtures.
func (t *Table) MustInsert(values ...Value) {
	if err := t.Insert(Row(values)); err != nil {
		panic(err)
	}
}

// Rows returns a deep copy of all rows.
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, len(t.rows))
	for i, r := range t.rows {
		out[i] = append(Row(nil), r...)
	}
	return out
}

// Select returns a new table holding the rows satisfying pred.  The
// output is a derived snapshot: it carries no row-level provenance, so
// DeltaSince on it always reports unavailable (full invalidation).
func (t *Table) Select(pred func(Row) bool) *Table {
	out := NewTable(t.name+"_sel", t.schema)
	out.derived = true
	t.mu.RLock()
	for _, r := range t.rows {
		if pred(r) {
			out.rows = append(out.rows, append(Row(nil), r...))
		}
	}
	t.mu.RUnlock()
	out.stampVersion()
	return out
}

// Project returns a new table with only the named columns, in the given
// order.
func (t *Table) Project(cols ...string) (*Table, error) {
	idx := make([]int, len(cols))
	newCols := make([]Column, len(cols))
	for i, name := range cols {
		j, err := t.schema.ColumnIndex(name)
		if err != nil {
			return nil, err
		}
		idx[i] = j
		newCols[i] = t.schema.cols[j]
	}
	schema, err := NewSchema(newCols...)
	if err != nil {
		return nil, err
	}
	out := NewTable(t.name+"_proj", schema)
	out.derived = true
	t.mu.RLock()
	for _, r := range t.rows {
		nr := make(Row, len(idx))
		for i, j := range idx {
			nr[i] = r[j]
		}
		out.rows = append(out.rows, nr)
	}
	t.mu.RUnlock()
	out.stampVersion()
	return out, nil
}

// ColumnValues returns the encoded values of the named column, one per
// row (a multiset: duplicates preserved).  This is the T.A input to the
// equijoin-size protocol.
func (t *Table) ColumnValues(col string) ([][]byte, error) {
	i, err := t.schema.ColumnIndex(col)
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([][]byte, len(t.rows))
	for j, r := range t.rows {
		out[j] = r[i].Encode()
	}
	return out, nil
}

// DistinctValues returns the encoded distinct values of the named column
// — the paper's V (values "without duplicates" occurring in T.A) — in
// first-seen order.
func (t *Table) DistinctValues(col string) ([][]byte, error) {
	all, err := t.ColumnValues(col)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]struct{}, len(all))
	var out [][]byte
	for _, v := range all {
		if _, dup := seen[string(v)]; dup {
			continue
		}
		seen[string(v)] = struct{}{}
		out = append(out, v)
	}
	return out, nil
}

// ExtPayloads groups the table's rows by the named column and serializes
// each group: ext(v) = "all records in T_S where T_S.A = v" as one byte
// payload per distinct v, ready for the equijoin protocol.
func (t *Table) ExtPayloads(col string) (values [][]byte, exts [][]byte, err error) {
	i, err := t.schema.ColumnIndex(col)
	if err != nil {
		return nil, nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	order := make([]string, 0)
	groups := make(map[string][]Row)
	for _, r := range t.rows {
		k := string(r[i].Encode())
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	for _, k := range order {
		values = append(values, []byte(k))
		exts = append(exts, EncodeRows(groups[k]))
	}
	return values, exts, nil
}

// EncodeRows serializes a row group with per-row length prefixes.
func EncodeRows(rows []Row) []byte {
	var out []byte
	for _, r := range rows {
		enc := r.Encode()
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(enc)))
		out = append(out, l[:]...)
		out = append(out, enc...)
	}
	return out
}

// DecodeRows inverts EncodeRows given the row arity.
func DecodeRows(data []byte, arity int) ([]Row, error) {
	var out []Row
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, errors.New("reldb: truncated row group")
		}
		l := binary.BigEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < l {
			return nil, errors.New("reldb: truncated row in group")
		}
		r, err := DecodeRow(data[:l], arity)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		data = data[l:]
	}
	return out, nil
}

// Join computes the plaintext equijoin of two tables on the given
// columns — the reference result the private protocols are tested
// against.  The output schema is t's columns followed by o's columns
// (with the join column deduplicated on o's side).
func (t *Table) Join(o *Table, tCol, oCol string) (*Table, error) {
	ti, err := t.schema.ColumnIndex(tCol)
	if err != nil {
		return nil, err
	}
	oi, err := o.schema.ColumnIndex(oCol)
	if err != nil {
		return nil, err
	}
	var cols []Column
	cols = append(cols, t.schema.cols...)
	for j, c := range o.schema.cols {
		if j == oi {
			continue
		}
		cols = append(cols, Column{Name: o.name + "." + c.Name, Type: c.Type})
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := NewTable(t.name+"_join_"+o.name, schema)
	out.derived = true

	// Snapshot both inputs first: locking two tables in place would
	// deadlock on concurrent Join(a, b) / Join(b, a).
	tRows, oRows := t.Rows(), o.Rows()
	byVal := make(map[string][]Row)
	for _, r := range oRows {
		k := string(r[oi].Encode())
		byVal[k] = append(byVal[k], r)
	}
	for _, r := range tRows {
		for _, or := range byVal[string(r[ti].Encode())] {
			nr := append(Row(nil), r...)
			for j, v := range or {
				if j == oi {
					continue
				}
				nr = append(nr, v)
			}
			out.rows = append(out.rows, nr)
		}
	}
	out.stampVersion()
	return out, nil
}

// GroupCount is one group-by bucket.
type GroupCount struct {
	Key   []Value
	Count int
}

// GroupByCount evaluates SELECT cols..., COUNT(*) GROUP BY cols...,
// returning buckets sorted by key for deterministic comparison.
func (t *Table) GroupByCount(cols ...string) ([]GroupCount, error) {
	idx := make([]int, len(cols))
	for i, name := range cols {
		j, err := t.schema.ColumnIndex(name)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	counts := make(map[string]*GroupCount)
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows {
		var key []byte
		kv := make([]Value, len(idx))
		for i, j := range idx {
			kv[i] = r[j]
			key = append(key, r[j].Encode()...)
			key = append(key, 0)
		}
		if g, ok := counts[string(key)]; ok {
			g.Count++
		} else {
			counts[string(key)] = &GroupCount{Key: kv, Count: 1}
		}
	}
	out := make([]GroupCount, 0, len(counts))
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, *counts[k])
	}
	return out, nil
}
