package reldb

import (
	"sync"
	"testing"
)

// TestVersionDistinguishesContents pins the invariant consumers key
// precomputed state by: distinct contents of a table never share a
// version, even when row counts coincide.  The seed bug this guards
// against stamped derived tables with their row count, so a re-derived
// Select after a cardinality-preserving update replayed stale cache
// entries.
func TestVersionDistinguishesContents(t *testing.T) {
	schema := MustSchema(Column{Name: "a", Type: TypeInt})
	tab := NewTable("t", schema)
	tab.MustInsert(Int(1))
	tab.MustInsert(Int(2))

	pred := func(r Row) bool { return r[0].AsInt() >= 2 }
	sel1 := tab.Select(pred)

	// A mutation that preserves the selection's cardinality: v=2 leaves,
	// v=3 enters.
	tab.MustInsert(Int(3))
	sel2 := tab.Select(func(r Row) bool { return r[0].AsInt() == 3 })

	if sel1.NumRows() != sel2.NumRows() {
		t.Fatalf("setup: selections differ in cardinality: %d vs %d", sel1.NumRows(), sel2.NumRows())
	}
	if sel1.Version() == sel2.Version() {
		t.Errorf("two selections with different contents but equal row count share version %d", sel1.Version())
	}
}

// TestVersionMonotonicAndUniqueAcrossDerivations walks a table through
// constructions, mutations, and every derivation operator, asserting
// versions only grow and never collide.
func TestVersionMonotonicAndUniqueAcrossDerivations(t *testing.T) {
	schema := MustSchema(Column{Name: "a", Type: TypeInt}, Column{Name: "b", Type: TypeString})
	seen := make(map[uint64]string)
	note := func(what string, v uint64) {
		t.Helper()
		if prev, dup := seen[v]; dup {
			t.Errorf("version %d of %s collides with %s", v, what, prev)
		}
		seen[v] = what
	}

	tab := NewTable("t", schema)
	note("fresh table", tab.Version())
	last := tab.Version()
	for i := 0; i < 3; i++ {
		tab.MustInsert(Int(int64(i)), String("x"))
		if v := tab.Version(); v <= last {
			t.Errorf("insert %d: version %d did not increase past %d", i, v, last)
		} else {
			last = v
		}
	}
	note("mutated table", tab.Version())

	sel := tab.Select(func(Row) bool { return true })
	note("select", sel.Version())
	proj, err := tab.Project("a")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	note("project", proj.Version())
	join, err := tab.Join(sel, "a", "a")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	note("join", join.Version())
}

// TestVersionConcurrentReads exercises Version against concurrent
// mutation under -race: party.Server.DataVersion documents that the
// callback must be safe for concurrent use, and psiserver passes
// Table.Version directly.
func TestVersionConcurrentReads(t *testing.T) {
	schema := MustSchema(Column{Name: "a", Type: TypeInt})
	tab := NewTable("t", schema)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = tab.Version()
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		tab.MustInsert(Int(int64(i)))
	}
	close(stop)
	wg.Wait()
}
