package reldb

import (
	"bytes"
	"strings"
	"testing"
)

const medicalCSV = `personid:int,drug:bool,reaction:bool
1,true,false
2,false,false
3,true,true
`

func TestReadCSV(t *testing.T) {
	tb, err := ReadCSV("T_S", strings.NewReader(medicalCSV))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if tb.Schema().NumColumns() != 3 {
		t.Fatalf("cols = %d", tb.Schema().NumColumns())
	}
	rows := tb.Rows()
	if rows[2][0].AsInt() != 3 || !rows[2][1].AsBool() || !rows[2][2].AsBool() {
		t.Errorf("row 3 = %v", rows[2])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := NewTable("t", MustSchema(
		Column{Name: "name", Type: TypeString},
		Column{Name: "age", Type: TypeInt},
		Column{Name: "member", Type: TypeBool},
	))
	tb.MustInsert(String("ann"), Int(33), Bool(true))
	tb.MustInsert(String("bob"), Int(-4), Bool(false))

	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 {
		t.Fatalf("rows = %d", back.NumRows())
	}
	r := back.Rows()
	if r[0][0].AsString() != "ann" || r[0][1].AsInt() != 33 || !r[0][2].AsBool() {
		t.Errorf("row 0 = %v", r[0])
	}
	if r[1][1].AsInt() != -4 {
		t.Errorf("negative int lost: %v", r[1])
	}
}

func TestReadCSVDefaultsToString(t *testing.T) {
	tb, err := ReadCSV("t", strings.NewReader("word\nhello\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema().Columns()[0].Type != TypeString {
		t.Error("bare header did not default to string")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"unknown type", "a:float\n1.5\n"},
		{"bad int", "a:int\nnotanumber\n"},
		{"bad bool", "a:bool\nmaybe\n"},
		{"duplicate column", "a:int,a:int\n1,2\n"},
		{"empty", ""},
	}
	for _, tc := range cases {
		if _, err := ReadCSV("t", strings.NewReader(tc.data)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
