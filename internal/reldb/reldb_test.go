package reldb

import (
	"reflect"
	"testing"
	"testing/quick"
)

func personSchema() *Schema {
	return MustSchema(
		Column{Name: "id", Type: TypeInt},
		Column{Name: "name", Type: TypeString},
		Column{Name: "active", Type: TypeBool},
	)
}

func TestValueRoundTrip(t *testing.T) {
	cases := []Value{
		String(""), String("hello"), String("héllo wörld"),
		Int(0), Int(-1), Int(1 << 62), Int(-(1 << 62)),
		Bool(true), Bool(false),
	}
	for _, v := range cases {
		got, err := DecodeValue(v.Encode())
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	f := func(s string, i int64, b bool) bool {
		for _, v := range []Value{String(s), Int(i), Bool(b)} {
			got, err := DecodeValue(v.Encode())
			if err != nil || !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueEncodingsInjectiveAcrossTypes(t *testing.T) {
	// Int(1) and String("\x00...\x01") etc. must not collide: the type
	// byte separates them.
	a := Int(1).Encode()
	b := String(string(Int(1).Encode()[1:])).Encode()
	if string(a) == string(b) {
		t.Error("cross-type encoding collision")
	}
}

func TestDecodeValueErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{byte(TypeInt), 1, 2}, // short int
		{byte(TypeBool)},      // missing payload
		{byte(TypeBool), 7},   // invalid bool
		{99, 1, 2, 3},         // unknown type
		{byte(TypeInvalid)},   // invalid type
	}
	for _, data := range bad {
		if _, err := DecodeValue(data); err == nil {
			t.Errorf("DecodeValue(%x) accepted garbage", data)
		}
	}
}

func TestValueAccessorsPanicOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AsInt on a string did not panic")
		}
	}()
	_ = String("x").AsInt()
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "", Type: TypeInt}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Type: TypeInt}, Column{Name: "a", Type: TypeString}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Type: Type(42)}); err == nil {
		t.Error("invalid type accepted")
	}
	s := personSchema()
	if s.NumColumns() != 3 {
		t.Errorf("NumColumns = %d", s.NumColumns())
	}
	if i, err := s.ColumnIndex("name"); err != nil || i != 1 {
		t.Errorf("ColumnIndex(name) = %d, %v", i, err)
	}
	if _, err := s.ColumnIndex("missing"); err == nil {
		t.Error("missing column lookup succeeded")
	}
	if len(s.Columns()) != 3 {
		t.Error("Columns() wrong length")
	}
}

func TestInsertValidation(t *testing.T) {
	tb := NewTable("people", personSchema())
	if err := tb.Insert(Row{Int(1), String("ann"), Bool(true)}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(Row{Int(1), String("bob")}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := tb.Insert(Row{String("x"), String("bob"), Bool(false)}); err == nil {
		t.Error("wrong type accepted")
	}
	if tb.NumRows() != 1 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestRowsAreCopies(t *testing.T) {
	tb := NewTable("people", personSchema())
	tb.MustInsert(Int(1), String("ann"), Bool(true))
	rows := tb.Rows()
	rows[0][1] = String("MUTATED")
	if tb.Rows()[0][1].AsString() != "ann" {
		t.Error("Rows() exposed internal storage")
	}
}

func TestSelectProject(t *testing.T) {
	tb := NewTable("people", personSchema())
	tb.MustInsert(Int(1), String("ann"), Bool(true))
	tb.MustInsert(Int(2), String("bob"), Bool(false))
	tb.MustInsert(Int(3), String("cat"), Bool(true))

	active := tb.Select(func(r Row) bool { return r[2].AsBool() })
	if active.NumRows() != 2 {
		t.Errorf("Select kept %d rows, want 2", active.NumRows())
	}

	names, err := active.Project("name")
	if err != nil {
		t.Fatal(err)
	}
	if names.NumRows() != 2 || names.Schema().NumColumns() != 1 {
		t.Errorf("Project shape wrong")
	}
	if names.Rows()[0][0].AsString() != "ann" {
		t.Error("Project lost data")
	}
	if _, err := tb.Project("nope"); err == nil {
		t.Error("Project on missing column succeeded")
	}
}

func TestColumnAndDistinctValues(t *testing.T) {
	tb := NewTable("t", MustSchema(Column{Name: "k", Type: TypeInt}))
	for _, k := range []int64{5, 3, 5, 7, 3, 5} {
		tb.MustInsert(Int(k))
	}
	all, err := tb.ColumnValues("k")
	if err != nil || len(all) != 6 {
		t.Fatalf("ColumnValues: %d, %v", len(all), err)
	}
	distinct, err := tb.DistinctValues("k")
	if err != nil || len(distinct) != 3 {
		t.Fatalf("DistinctValues: %d, %v", len(distinct), err)
	}
	// First-seen order: 5, 3, 7.
	want := []int64{5, 3, 7}
	for i, enc := range distinct {
		v, err := DecodeValue(enc)
		if err != nil || v.AsInt() != want[i] {
			t.Errorf("distinct[%d] = %v, want %d", i, v, want[i])
		}
	}
	if _, err := tb.ColumnValues("missing"); err == nil {
		t.Error("missing column accepted")
	}
}

func TestExtPayloadsRoundTrip(t *testing.T) {
	tb := NewTable("orders", MustSchema(
		Column{Name: "customer", Type: TypeString},
		Column{Name: "amount", Type: TypeInt},
	))
	tb.MustInsert(String("ann"), Int(10))
	tb.MustInsert(String("bob"), Int(20))
	tb.MustInsert(String("ann"), Int(30))

	values, exts, err := tb.ExtPayloads("customer")
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 2 || len(exts) != 2 {
		t.Fatalf("got %d groups, want 2", len(values))
	}
	// ann's group: two rows.
	v0, _ := DecodeValue(values[0])
	if v0.AsString() != "ann" {
		t.Fatalf("first group is %v", v0)
	}
	rows, err := DecodeRows(exts[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][1].AsInt() != 10 || rows[1][1].AsInt() != 30 {
		t.Errorf("ann's ext rows wrong: %v", rows)
	}
}

func TestDecodeRowsErrors(t *testing.T) {
	if _, err := DecodeRows([]byte{1, 2}, 1); err == nil {
		t.Error("truncated group accepted")
	}
	if _, err := DecodeRow([]byte{0, 0, 0, 9, 1}, 1); err == nil {
		t.Error("truncated row accepted")
	}
	// Wrong arity.
	r := Row{Int(1), Int(2)}
	if _, err := DecodeRow(r.Encode(), 3); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestJoinMatchesManual(t *testing.T) {
	orders := NewTable("orders", MustSchema(
		Column{Name: "cust", Type: TypeString},
		Column{Name: "amount", Type: TypeInt},
	))
	orders.MustInsert(String("ann"), Int(10))
	orders.MustInsert(String("bob"), Int(20))
	orders.MustInsert(String("ann"), Int(30))

	people := NewTable("people", MustSchema(
		Column{Name: "name", Type: TypeString},
		Column{Name: "city", Type: TypeString},
	))
	people.MustInsert(String("ann"), String("oslo"))
	people.MustInsert(String("cat"), String("rome"))

	j, err := orders.Join(people, "cust", "name")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 2 {
		t.Fatalf("join rows = %d, want 2 (ann×2)", j.NumRows())
	}
	for _, r := range j.Rows() {
		if r[0].AsString() != "ann" || r[2].AsString() != "oslo" {
			t.Errorf("bad join row %v", r)
		}
	}
	if _, err := orders.Join(people, "cust", "nope"); err == nil {
		t.Error("join on missing column succeeded")
	}
}

func TestJoinDuplicateMultiplicities(t *testing.T) {
	a := NewTable("a", MustSchema(Column{Name: "k", Type: TypeInt}))
	b := NewTable("b", MustSchema(Column{Name: "k", Type: TypeInt}))
	for i := 0; i < 3; i++ {
		a.MustInsert(Int(7))
	}
	for i := 0; i < 2; i++ {
		b.MustInsert(Int(7))
	}
	j, err := a.Join(b, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 6 {
		t.Errorf("3×2 join produced %d rows", j.NumRows())
	}
}

func TestGroupByCount(t *testing.T) {
	tb := NewTable("t", MustSchema(
		Column{Name: "pattern", Type: TypeBool},
		Column{Name: "reaction", Type: TypeBool},
	))
	add := func(p, r bool, n int) {
		for i := 0; i < n; i++ {
			tb.MustInsert(Bool(p), Bool(r))
		}
	}
	add(true, true, 4)
	add(true, false, 3)
	add(false, false, 2)

	groups, err := tb.GroupByCount("pattern", "reaction")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += g.Count
		if len(g.Key) != 2 {
			t.Errorf("key arity %d", len(g.Key))
		}
	}
	if total != 9 {
		t.Errorf("counts sum to %d, want 9", total)
	}
	if _, err := tb.GroupByCount("nope"); err == nil {
		t.Error("group by missing column succeeded")
	}
}

func TestGenPeopleTables(t *testing.T) {
	tR, tS := GenPeopleTables(500, 0.3, 0.5, 0.2, 42)
	if tR.NumRows() != 500 || tS.NumRows() != 500 {
		t.Fatalf("rows: %d, %d", tR.NumRows(), tS.NumRows())
	}
	// Determinism.
	tR2, _ := GenPeopleTables(500, 0.3, 0.5, 0.2, 42)
	if !reflect.DeepEqual(tR.Rows(), tR2.Rows()) {
		t.Error("GenPeopleTables not deterministic")
	}
	// Roughly the right fractions.
	pat := tR.Select(func(r Row) bool { return r[1].AsBool() }).NumRows()
	if pat < 100 || pat > 200 {
		t.Errorf("pattern count %d, expected ≈150", pat)
	}
	// reaction implies drug.
	bad := tS.Select(func(r Row) bool { return r[2].AsBool() && !r[1].AsBool() }).NumRows()
	if bad != 0 {
		t.Errorf("%d rows with reaction but no drug", bad)
	}
}

func TestGenKeyedTable(t *testing.T) {
	tb := GenKeyedTable("x", 200, 50, 7)
	if tb.NumRows() != 200 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	distinct, _ := tb.DistinctValues("key")
	if len(distinct) > 50 {
		t.Errorf("distinct keys %d > keyspace 50", len(distinct))
	}
}

func TestGenOverlappingKeyTables(t *testing.T) {
	tR, tS := GenOverlappingKeyTables(10, 20, 4)
	vR, _ := tR.DistinctValues("key")
	vS, _ := tS.DistinctValues("key")
	if len(vR) != 10 || len(vS) != 20 {
		t.Fatalf("sizes %d, %d", len(vR), len(vS))
	}
	inS := map[string]bool{}
	for _, v := range vS {
		inS[string(v)] = true
	}
	shared := 0
	for _, v := range vR {
		if inS[string(v)] {
			shared++
		}
	}
	if shared != 4 {
		t.Errorf("overlap = %d, want 4", shared)
	}
}

func TestTypeStrings(t *testing.T) {
	for _, typ := range []Type{TypeString, TypeInt, TypeBool, Type(9)} {
		if typ.String() == "" {
			t.Errorf("Type(%d).String() empty", typ)
		}
	}
	if Int(5).String() != "5" || Bool(true).String() != "true" || String("s").String() != "s" {
		t.Error("Value.String wrong")
	}
	if (Value{}).String() != "<invalid>" {
		t.Error("invalid value String wrong")
	}
}
