package reldb

import (
	"strings"
	"testing"
)

// FuzzDecodeValue: arbitrary bytes must never panic, and accepted values
// must round-trip.
func FuzzDecodeValue(f *testing.F) {
	for _, v := range []Value{String("hello"), Int(-42), Bool(true)} {
		f.Add(v.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{byte(TypeInt), 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeValue(data)
		if err != nil {
			return
		}
		back, err := DecodeValue(v.Encode())
		if err != nil || !back.Equal(v) {
			t.Fatalf("accepted value failed round trip: %v / %v (%v)", v, back, err)
		}
	})
}

// FuzzDecodeRows: arbitrary bytes with arbitrary arity must never panic.
func FuzzDecodeRows(f *testing.F) {
	rows := []Row{{Int(1), String("a")}, {Int(2), String("b")}}
	f.Add(EncodeRows(rows), 2)
	f.Add([]byte{0, 0, 0, 200}, 1)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, data []byte, arity int) {
		if arity < 0 || arity > 64 {
			return
		}
		decoded, err := DecodeRows(data, arity)
		if err != nil {
			return
		}
		// Accepted row groups re-encode and decode to the same shape.
		back, err := DecodeRows(EncodeRows(decoded), arity)
		if err != nil || len(back) != len(decoded) {
			t.Fatalf("accepted rows failed round trip: %v", err)
		}
	})
}

// FuzzReadCSV: arbitrary CSV input must never panic, and accepted tables
// must round-trip through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("a:int,b:string\n1,x\n2,y\n")
	f.Add("a:bool\ntrue\n")
	f.Add("broken")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		tb, err := ReadCSV("t", strings.NewReader(data))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := tb.WriteCSV(&sb); err != nil {
			t.Fatalf("accepted table failed to write: %v", err)
		}
		back, err := ReadCSV("t", strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("written CSV failed to re-read: %v", err)
		}
		if back.NumRows() != tb.NumRows() {
			t.Fatalf("round trip changed row count %d -> %d", tb.NumRows(), back.NumRows())
		}
	})
}
