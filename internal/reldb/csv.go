package reldb

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV import/export.  The first row is a header of "name:type" cells
// (type ∈ string|int|bool; bare "name" defaults to string), so a table
// round-trips losslessly:
//
//	personid:int,drug:bool,reaction:bool
//	1,true,false
//
// This is how cmd/psiserver loads an enterprise's table from disk.

// ReadCSV parses a typed CSV stream into a new table.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reldb: reading CSV header: %w", err)
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		nameAndType := strings.SplitN(strings.TrimSpace(h), ":", 2)
		col := Column{Name: nameAndType[0], Type: TypeString}
		if len(nameAndType) == 2 {
			switch nameAndType[1] {
			case "string":
				col.Type = TypeString
			case "int":
				col.Type = TypeInt
			case "bool":
				col.Type = TypeBool
			default:
				return nil, fmt.Errorf("reldb: column %q has unknown CSV type %q", col.Name, nameAndType[1])
			}
		}
		cols[i] = col
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	t := NewTable(name, schema)
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("reldb: CSV line %d: %w", line, err)
		}
		row := make(Row, len(record))
		for i, cell := range record {
			if i >= len(cols) {
				return nil, fmt.Errorf("reldb: CSV line %d has %d cells, schema has %d", line, len(record), len(cols))
			}
			v, err := parseCell(cols[i].Type, cell)
			if err != nil {
				return nil, fmt.Errorf("reldb: CSV line %d column %q: %w", line, cols[i].Name, err)
			}
			row[i] = v
		}
		if err := t.Insert(row); err != nil {
			return nil, fmt.Errorf("reldb: CSV line %d: %w", line, err)
		}
	}
}

func parseCell(t Type, cell string) (Value, error) {
	switch t {
	case TypeString:
		return String(cell), nil
	case TypeInt:
		i, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64)
		if err != nil {
			return Value{}, err
		}
		return Int(i), nil
	case TypeBool:
		b, err := strconv.ParseBool(strings.TrimSpace(cell))
		if err != nil {
			return Value{}, err
		}
		return Bool(b), nil
	default:
		return Value{}, fmt.Errorf("unsupported type %v", t)
	}
}

// WriteCSV serializes the table with a typed header, inverting ReadCSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.schema.NumColumns())
	for i, c := range t.schema.cols {
		header[i] = fmt.Sprintf("%s:%s", c.Name, c.Type)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("reldb: writing CSV header: %w", err)
	}
	for _, r := range t.rows {
		record := make([]string, len(r))
		for i, v := range r {
			record[i] = v.String()
		}
		if len(record) == 1 && record[0] == "" {
			// encoding/csv writes a lone empty field as a blank line,
			// which its reader then skips; force explicit quoting so the
			// row survives the round trip.
			cw.Flush()
			if err := cw.Error(); err != nil {
				return fmt.Errorf("reldb: writing CSV row: %w", err)
			}
			if _, err := io.WriteString(w, "\"\"\n"); err != nil {
				return fmt.Errorf("reldb: writing CSV row: %w", err)
			}
			continue
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("reldb: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
