package reldb

import (
	"fmt"
	"math/rand"
)

// Workload generators for the experiment harness.  Scale-free synthetic
// stand-ins for the paper's enterprise datasets (DESIGN.md substitution
// table): the protocols' costs depend only on set sizes and duplicate
// structure, both of which these generators control exactly.

// GenPeopleTables builds the two tables of the medical research
// application (Section 1.1, Application 2):
//
//	T_R(personid, pattern)         — enterprise R: DNA pattern presence
//	T_S(personid, drug, reaction)  — enterprise S: drug intake and reaction
//
// n people exist in each enterprise; fractions control how many carry the
// DNA pattern, took drug G, and (of those) had an adverse reaction.  The
// generator is deterministic in seed.
func GenPeopleTables(n int, patternFrac, drugFrac, reactionFrac float64, seed int64) (tR, tS *Table) {
	rng := rand.New(rand.NewSource(seed))
	tR = NewTable("T_R", MustSchema(
		Column{Name: "personid", Type: TypeInt},
		Column{Name: "pattern", Type: TypeBool},
	))
	tS = NewTable("T_S", MustSchema(
		Column{Name: "personid", Type: TypeInt},
		Column{Name: "drug", Type: TypeBool},
		Column{Name: "reaction", Type: TypeBool},
	))
	for id := 0; id < n; id++ {
		pattern := rng.Float64() < patternFrac
		drug := rng.Float64() < drugFrac
		reaction := drug && rng.Float64() < reactionFrac
		tR.MustInsert(Int(int64(id)), Bool(pattern))
		tS.MustInsert(Int(int64(id)), Bool(drug), Bool(reaction))
	}
	return tR, tS
}

// GenKeyedTable builds a table with an integer key column drawn from
// [0, keySpace) with possible duplicates, plus a payload string column —
// generic input for join/join-size experiments.  Duplicate structure is
// controlled by rows vs keySpace.
func GenKeyedTable(name string, rows, keySpace int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	t := NewTable(name, MustSchema(
		Column{Name: "key", Type: TypeInt},
		Column{Name: "payload", Type: TypeString},
	))
	for i := 0; i < rows; i++ {
		k := rng.Intn(keySpace)
		t.MustInsert(Int(int64(k)), String(fmt.Sprintf("%s-row-%d", name, i)))
	}
	return t
}

// GenOverlappingKeyTables builds two single-key-column tables whose key
// sets overlap in exactly `shared` values — the controlled workload for
// intersection experiments at a given selectivity.
func GenOverlappingKeyTables(nR, nS, shared int) (tR, tS *Table) {
	if shared > nR || shared > nS {
		panic("reldb: shared exceeds a table size")
	}
	schema := MustSchema(Column{Name: "key", Type: TypeInt})
	tR = NewTable("R", schema)
	tS = NewTable("S", schema)
	// Shared keys: 0..shared-1.  R-only: 1e9+i.  S-only: 2e9+i.
	for i := 0; i < shared; i++ {
		tR.MustInsert(Int(int64(i)))
		tS.MustInsert(Int(int64(i)))
	}
	for i := 0; i < nR-shared; i++ {
		tR.MustInsert(Int(int64(1_000_000_000 + i)))
	}
	for i := 0; i < nS-shared; i++ {
		tS.MustInsert(Int(int64(2_000_000_000 + i)))
	}
	return tR, tS
}
