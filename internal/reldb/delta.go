// Row-level delta maintenance.
//
// The paper's protocols re-encrypt a party's whole value set per query;
// the S27 encrypted-set cache amortizes that across a *series* of
// queries — but any mutation bumps the data version and, before this
// file, invalidated the whole precomputation.  The change log below
// turns a version bump into an answerable question: "which distinct
// values of column A changed between version v and now?"  The protocol
// layer uses the answer to upgrade cached encrypted sets
// (commutative.CachedSet.ApplyDelta via core's delta-upgrade path) and
// to push standing-query updates, paying O(churn) instead of O(|V|).
package reldb

import (
	"context"
	"sort"
)

// maxChangeLog bounds the per-table mutation log.  When the log
// overflows, the oldest entries are dropped and DeltaSince answers
// "unavailable" for versions older than the drop point — consumers fall
// back to a full rebuild, exactly as they would for an unlogged table.
const maxChangeLog = 4096

// changeEntry is one logged row mutation.  The version is the table
// version *after* the mutation; all rows removed by one Delete batch
// share a version.
type changeEntry struct {
	version uint64
	insert  bool
	row     Row
}

// logAppendLocked records a mutation, trimming the log to its bound.
// Callers hold t.mu.
func (t *Table) logAppendLocked(e changeEntry) {
	t.log = append(t.log, e)
	for len(t.log) > maxChangeLog {
		// Deltas from versions before the dropped entry can no longer be
		// reconstructed; versions at or after it still can, because only
		// entries strictly newer than `from` matter.
		t.logSeal = t.log[0].version
		t.log = t.log[1:]
	}
}

// notify wakes every Wait/Changed watcher after a mutation.
func (t *Table) notify() {
	t.mu.Lock()
	if t.watch != nil {
		close(t.watch)
		t.watch = nil
	}
	t.mu.Unlock()
}

// Changed returns a channel that is closed at the table's next
// mutation.  Grab the channel *before* reading the state you depend on,
// then select on it: the close can never be missed.
func (t *Table) Changed() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.watch == nil {
		t.watch = make(chan struct{})
	}
	return t.watch
}

// Wait blocks until the table's version differs from `from` or the
// context ends.  A table already past `from` returns immediately.
func (t *Table) Wait(ctx context.Context, from uint64) error {
	for {
		ch := t.Changed()
		if t.Version() != from {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// AttrDelta is the distinct-value delta of one column between two data
// versions: exactly the report the encrypted-set pipeline needs to
// maintain f_e(h(v)) sets and ext(v) payloads incrementally.
type AttrDelta struct {
	// From and To are the data versions the delta spans.
	From, To uint64
	// Inserted holds encoded values present at To but absent at From,
	// with InsertedExt the serialized ext(v) row group of each at To.
	Inserted    [][]byte
	InsertedExt [][]byte
	// Updated holds values present at both versions whose matching row
	// set — ext(v) — changed, with the new payload.  A value whose rows
	// were deleted and identically reinserted within the span does not
	// appear at all: its ext(v) is unchanged.
	Updated    [][]byte
	UpdatedExt [][]byte
	// Deleted holds values present at From but absent at To.
	Deleted [][]byte
}

// Empty reports whether the delta carries no changes.
func (d AttrDelta) Empty() bool {
	return len(d.Inserted) == 0 && len(d.Updated) == 0 && len(d.Deleted) == 0
}

// Churn is the number of distinct values the delta touches.
func (d AttrDelta) Churn() int {
	return len(d.Inserted) + len(d.Updated) + len(d.Deleted)
}

// DeltaSince reports how the distinct values of the named column (and
// their ext(v) row groups) changed between version `from` and the
// table's current version.  The second return is false when the delta
// cannot be reconstructed — a derived table (Select/Project/Join output,
// which carries no row provenance), a version older than the bounded
// log reaches, a version from the future, or an unknown column — in
// which case the caller must fall back to full invalidation.
func (t *Table) DeltaSince(from uint64, col string) (AttrDelta, bool) {
	ci, err := t.schema.ColumnIndex(col)
	if err != nil {
		return AttrDelta{}, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	to := t.Version()
	if t.derived || from < t.logSeal || from > to {
		return AttrDelta{}, false
	}
	d := AttrDelta{From: from, To: to}
	if from == to {
		return d, true
	}

	// The log suffix newer than `from`, and the set of values it touches.
	var suffix []changeEntry
	touched := make(map[string]bool)
	for _, e := range t.log {
		if e.version > from {
			suffix = append(suffix, e)
			touched[string(e.row[ci].Encode())] = true
		}
	}
	if len(suffix) == 0 {
		// A version advance with no logged rows cannot happen for a base
		// table; refuse rather than claim an empty delta.
		return AttrDelta{}, false
	}

	// Current row groups of the touched values, in table order (the
	// order ExtPayloads serializes, so InsertedExt/UpdatedExt match it).
	curRows := make(map[string][]Row)
	for _, r := range t.rows {
		k := string(r[ci].Encode())
		if touched[k] {
			curRows[k] = append(curRows[k], r)
		}
	}

	// Reconstruct each touched value's row group at `from` by undoing
	// the suffix newest-first: an insert removes its row again, a delete
	// puts its row back.
	oldRows := make(map[string][]Row, len(curRows))
	for k, rs := range curRows {
		oldRows[k] = append([]Row(nil), rs...)
	}
	for i := len(suffix) - 1; i >= 0; i-- {
		e := suffix[i]
		k := string(e.row[ci].Encode())
		if e.insert {
			rs := oldRows[k]
			enc := string(e.row.Encode())
			found := false
			for j := len(rs) - 1; j >= 0; j-- {
				if string(rs[j].Encode()) == enc {
					oldRows[k] = append(rs[:j], rs[j+1:]...)
					found = true
					break
				}
			}
			if !found {
				return AttrDelta{}, false // log disagrees with the rows
			}
		} else {
			oldRows[k] = append(oldRows[k], e.row)
		}
	}

	keys := make([]string, 0, len(touched))
	for k := range touched {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		old, cur := oldRows[k], curRows[k]
		switch {
		case len(old) == 0 && len(cur) > 0:
			d.Inserted = append(d.Inserted, []byte(k))
			d.InsertedExt = append(d.InsertedExt, EncodeRows(cur))
		case len(old) > 0 && len(cur) == 0:
			d.Deleted = append(d.Deleted, []byte(k))
		case len(old) > 0 && len(cur) > 0:
			if !sameRowMultiset(old, cur) {
				d.Updated = append(d.Updated, []byte(k))
				d.UpdatedExt = append(d.UpdatedExt, EncodeRows(cur))
			}
		}
	}
	return d, true
}

// sameRowMultiset reports whether two row groups hold the same rows
// regardless of order (reconstruction loses the original positions of
// undeleted rows, and ext(v) equality is what consumers care about).
func sameRowMultiset(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[string]int, len(a))
	for _, r := range a {
		counts[string(r.Encode())]++
	}
	for _, r := range b {
		k := string(r.Encode())
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

// AttributeSource binds one (table, column) pair as a delta source for
// the protocol layer: the sender side of the encrypted-set pipeline
// polls Version, reconstructs deltas with DeltaSince, and parks on Wait
// between standing-query pushes.  internal/party adapts it to
// core.DeltaSource (reldb deliberately does not import the protocol
// layer).
type AttributeSource struct {
	t   *Table
	col string
}

// NewAttributeSource builds a delta source for the named column.
func NewAttributeSource(t *Table, col string) *AttributeSource {
	return &AttributeSource{t: t, col: col}
}

// Table returns the bound table.
func (s *AttributeSource) Table() *Table { return s.t }

// Column returns the bound column name.
func (s *AttributeSource) Column() string { return s.col }

// Version returns the bound table's current data version.
func (s *AttributeSource) Version() uint64 { return s.t.Version() }

// DeltaSince reports the bound column's delta from the given version.
func (s *AttributeSource) DeltaSince(from uint64) (AttrDelta, bool) {
	return s.t.DeltaSince(from, s.col)
}

// Wait blocks until the table mutates past `from` or ctx ends.
func (s *AttributeSource) Wait(ctx context.Context, from uint64) error {
	return s.t.Wait(ctx, from)
}
