package reldb

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func deltaTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable("t", MustSchema(
		Column{Name: "a", Type: TypeString},
		Column{Name: "x", Type: TypeInt},
	))
	tbl.MustInsert(String("ann"), Int(1))
	tbl.MustInsert(String("bob"), Int(2))
	tbl.MustInsert(String("bob"), Int(3))
	return tbl
}

func names(vals [][]byte) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		dv, err := DecodeValue(v)
		if err != nil {
			out[i] = fmt.Sprintf("<bad: %v>", err)
			continue
		}
		out[i] = dv.AsString()
	}
	return out
}

func TestDeltaSinceInsertDelete(t *testing.T) {
	tbl := deltaTable(t)
	v0 := tbl.Version()

	tbl.MustInsert(String("carol"), Int(4))
	if n := tbl.Delete(func(r Row) bool { return r[0].AsString() == "ann" }); n != 1 {
		t.Fatalf("deleted %d rows, want 1", n)
	}
	tbl.MustInsert(String("bob"), Int(5)) // bob present throughout, ext changes

	d, ok := tbl.DeltaSince(v0, "a")
	if !ok {
		t.Fatal("delta unavailable, want available")
	}
	if d.From != v0 || d.To != tbl.Version() {
		t.Errorf("span = %d..%d, want %d..%d", d.From, d.To, v0, tbl.Version())
	}
	if got := names(d.Inserted); len(got) != 1 || got[0] != "carol" {
		t.Errorf("inserted = %v, want [carol]", got)
	}
	if got := names(d.Deleted); len(got) != 1 || got[0] != "ann" {
		t.Errorf("deleted = %v, want [ann]", got)
	}
	if got := names(d.Updated); len(got) != 1 || got[0] != "bob" {
		t.Errorf("updated = %v, want [bob]", got)
	}
	// The reported payloads must be exactly what ExtPayloads serializes
	// for the current state.
	vals, exts, err := tbl.ExtPayloads("a")
	if err != nil {
		t.Fatal(err)
	}
	byVal := make(map[string][]byte)
	for i := range vals {
		byVal[string(vals[i])] = exts[i]
	}
	if string(d.InsertedExt[0]) != string(byVal[string(d.Inserted[0])]) {
		t.Error("InsertedExt does not match ExtPayloads for carol")
	}
	if string(d.UpdatedExt[0]) != string(byVal[string(d.Updated[0])]) {
		t.Error("UpdatedExt does not match ExtPayloads for bob")
	}
}

func TestDeltaSinceEmpty(t *testing.T) {
	tbl := deltaTable(t)
	v0 := tbl.Version()
	d, ok := tbl.DeltaSince(v0, "a")
	if !ok || !d.Empty() || d.Churn() != 0 {
		t.Fatalf("same-version delta = %+v ok=%v, want empty/ok", d, ok)
	}
}

// A value deleted and identically reinserted within one batch of
// mutations is not churn: it is present at both ends with the same
// ext(v), so it must not appear in the delta at all.
func TestDeltaSinceDeleteReinsertSameValue(t *testing.T) {
	tbl := deltaTable(t)
	v0 := tbl.Version()

	tbl.Delete(func(r Row) bool { return r[0].AsString() == "ann" })
	tbl.MustInsert(String("ann"), Int(1)) // identical row comes back

	d, ok := tbl.DeltaSince(v0, "a")
	if !ok {
		t.Fatal("delta unavailable")
	}
	if !d.Empty() {
		t.Errorf("delete+reinsert delta = ins %v / upd %v / del %v, want empty",
			names(d.Inserted), names(d.Updated), names(d.Deleted))
	}

	// Reinsertion with a *different* non-key column is an update: same
	// value-set membership, changed ext(v).
	tbl.Delete(func(r Row) bool { return r[0].AsString() == "ann" })
	tbl.MustInsert(String("ann"), Int(99))
	d, ok = tbl.DeltaSince(v0, "a")
	if !ok {
		t.Fatal("delta unavailable")
	}
	if got := names(d.Updated); len(got) != 1 || got[0] != "ann" {
		t.Errorf("updated = %v, want [ann]", got)
	}
	if len(d.Inserted) != 0 || len(d.Deleted) != 0 {
		t.Errorf("inserted/deleted = %v/%v, want none", names(d.Inserted), names(d.Deleted))
	}
}

// Derived tables (Select/Project/Join) carry no row provenance: their
// deltas are never reconstructible, forcing consumers to the full
// rebuild path.
func TestDeltaSinceDerivedFallsBack(t *testing.T) {
	tbl := deltaTable(t)

	sel := tbl.Select(func(r Row) bool { return r[1].AsInt() > 1 })
	if _, ok := sel.DeltaSince(sel.Version(), "a"); ok {
		t.Error("Select output answered DeltaSince, want full invalidation")
	}
	proj, err := tbl.Project("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := proj.DeltaSince(proj.Version(), "a"); ok {
		t.Error("Project output answered DeltaSince, want full invalidation")
	}
	join, err := tbl.Join(tbl, "a", "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := join.DeltaSince(join.Version(), "a"); ok {
		t.Error("Join output answered DeltaSince, want full invalidation")
	}
}

func TestDeltaSinceUnavailableCases(t *testing.T) {
	tbl := deltaTable(t)
	v0 := tbl.Version()
	if _, ok := tbl.DeltaSince(v0, "nope"); ok {
		t.Error("unknown column answered, want unavailable")
	}
	if _, ok := tbl.DeltaSince(v0+1, "a"); ok {
		t.Error("future version answered, want unavailable")
	}
	if _, ok := tbl.DeltaSince(v0-100, "a"); ok {
		t.Error("pre-creation version answered, want unavailable")
	}
}

// Overflowing the bounded change log seals off old versions but keeps
// recent ones answerable.
func TestDeltaSinceLogOverflow(t *testing.T) {
	tbl := deltaTable(t)
	vOld := tbl.Version()
	for i := 0; i < maxChangeLog; i++ {
		tbl.MustInsert(String(fmt.Sprintf("v%d", i)), Int(int64(i)))
	}
	vMid := tbl.Version()
	tbl.MustInsert(String("last"), Int(1))

	if _, ok := tbl.DeltaSince(vOld, "a"); ok {
		t.Error("overflowed log answered an ancient version, want unavailable")
	}
	d, ok := tbl.DeltaSince(vMid, "a")
	if !ok {
		t.Fatal("recent version unavailable after overflow")
	}
	if got := names(d.Inserted); len(got) != 1 || got[0] != "last" {
		t.Errorf("inserted = %v, want [last]", got)
	}
}

func TestWaitAndChanged(t *testing.T) {
	tbl := deltaTable(t)
	v0 := tbl.Version()

	// Already-moved version returns immediately.
	tbl.MustInsert(String("x"), Int(1))
	if err := tbl.Wait(context.Background(), v0); err != nil {
		t.Fatalf("Wait on stale version: %v", err)
	}

	// A waiter parked on the current version wakes on mutation.
	v1 := tbl.Version()
	done := make(chan error, 1)
	go func() { done <- tbl.Wait(context.Background(), v1) }()
	time.Sleep(10 * time.Millisecond)
	tbl.MustInsert(String("y"), Int(2))
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait never woke after mutation")
	}

	// Context cancellation unblocks a parked waiter.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { done <- tbl.Wait(ctx, tbl.Version()) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Wait after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait ignored cancellation")
	}
}

func TestAttributeSource(t *testing.T) {
	tbl := deltaTable(t)
	src := NewAttributeSource(tbl, "a")
	if src.Table() != tbl || src.Column() != "a" {
		t.Fatal("accessors disagree with construction")
	}
	v0 := src.Version()
	if v0 != tbl.Version() {
		t.Fatalf("source version %d != table version %d", v0, tbl.Version())
	}
	tbl.MustInsert(String("zed"), Int(9))
	d, ok := src.DeltaSince(v0)
	if !ok || len(d.Inserted) != 1 {
		t.Fatalf("source delta = %+v ok=%v, want one insert", d, ok)
	}
	if err := src.Wait(context.Background(), v0); err != nil {
		t.Fatalf("source Wait: %v", err)
	}
}
