// Package docshare implements Application 1 of the paper (Sections 1.1
// and 6.2.1): selective document sharing.
//
// Two enterprises R and S each hold a set of documents.  Documents are
// preprocessed to their most significant words using term frequency ×
// inverse document frequency (the paper cites Salton & McGill [41]), and
// the parties wish to find all pairs (d_R, d_S) with
//
//	f(|d_R ∩ d_S|, |d_R|, |d_S|) > τ
//
// for a similarity function f — e.g. f = |d_R ∩ d_S| / (|d_R| + |d_S|) —
// without revealing the non-matching documents.  Following Section 6.2.1,
// R and S execute the intersection-size protocol for each pair of
// documents; R then evaluates f and keeps the pairs above threshold.
//
// As the paper notes, beyond |D_S| this reveals to R, for each document
// pair, the intersection size |d_R ∩ d_S| and |d_S| — that is the
// price of this construction, stated explicitly in Section 6.2.1.
package docshare

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode"

	"minshare/internal/core"
	"minshare/internal/transport"
)

// Document is a preprocessed document: an identifier plus its significant
// word set.
type Document struct {
	ID    string
	Words []string
}

// WordSet returns the document's words as protocol values, deduplicated.
func (d Document) WordSet() [][]byte {
	seen := make(map[string]struct{}, len(d.Words))
	var out [][]byte
	for _, w := range d.Words {
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		out = append(out, []byte(w))
	}
	return out
}

// Tokenize lower-cases text and splits it into letter/digit runs.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// TFIDF computes, for each document in the corpus, the tf·idf score of
// each of its distinct terms.  Term frequency is the raw in-document
// count normalized by document length; inverse document frequency is
// log(N / df) with N the corpus size.
func TFIDF(corpus [][]string) []map[string]float64 {
	n := len(corpus)
	df := make(map[string]int)
	for _, doc := range corpus {
		seen := make(map[string]struct{}, len(doc))
		for _, w := range doc {
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			df[w]++
		}
	}
	out := make([]map[string]float64, n)
	for i, doc := range corpus {
		tf := make(map[string]int, len(doc))
		for _, w := range doc {
			tf[w]++
		}
		scores := make(map[string]float64, len(tf))
		for w, c := range tf {
			idf := math.Log(float64(n) / float64(df[w]))
			scores[w] = float64(c) / float64(len(doc)) * idf
		}
		out[i] = scores
	}
	return out
}

// SignificantWords reduces each raw document to its k highest-tf·idf
// terms — the preprocessing step of Application 1 ("documents have been
// preprocessed to only include the most significant words").  Ties break
// alphabetically for determinism.
func SignificantWords(corpus [][]string, k int) [][]string {
	scores := TFIDF(corpus)
	out := make([][]string, len(corpus))
	for i, sc := range scores {
		words := make([]string, 0, len(sc))
		for w := range sc {
			words = append(words, w)
		}
		sort.Slice(words, func(a, b int) bool {
			if sc[words[a]] != sc[words[b]] {
				return sc[words[a]] > sc[words[b]]
			}
			return words[a] < words[b]
		})
		if len(words) > k {
			words = words[:k]
		}
		sort.Strings(words)
		out[i] = words
	}
	return out
}

// Similarity scores a document pair from the three quantities the
// intersection-size protocol yields.
type Similarity func(intersection, sizeR, sizeS int) float64

// DiceLike is the paper's example similarity,
// f = |d_R ∩ d_S| / (|d_R| + |d_S|).
func DiceLike(intersection, sizeR, sizeS int) float64 {
	if sizeR+sizeS == 0 {
		return 0
	}
	return float64(intersection) / float64(sizeR+sizeS)
}

// Jaccard is |d_R ∩ d_S| / |d_R ∪ d_S|, an alternative f.
func Jaccard(intersection, sizeR, sizeS int) float64 {
	union := sizeR + sizeS - intersection
	if union == 0 {
		return 0
	}
	return float64(intersection) / float64(union)
}

// Match is one above-threshold document pair as learned by R.
type Match struct {
	// RIndex and SIndex identify the documents by position in each
	// party's corpus; R knows its own IDs, S's documents stay pseudonymous
	// until the parties choose to exchange the matched ones.
	RIndex, SIndex int
	// RID is the receiver-side document identifier.
	RID string
	// Intersection is |d_R ∩ d_S|.
	Intersection int
	// SizeR and SizeS are |d_R| and |d_S|.
	SizeR, SizeS int
	// Score is f applied to the three sizes.
	Score float64
}

// MatchReceiver runs enterprise R's side of selective document sharing:
// one intersection-size protocol per document pair (Section 6.2.1), then
// the similarity filter.  It returns every pair with Score > threshold.
func MatchReceiver(ctx context.Context, cfg core.Config, conn transport.Conn, docs []Document, sim Similarity, threshold float64) ([]Match, error) {
	if sim == nil {
		sim = DiceLike
	}
	nS, err := exchangeCounts(ctx, conn, len(docs), true)
	if err != nil {
		return nil, fmt.Errorf("docshare: exchanging corpus sizes: %w", err)
	}
	var matches []Match
	for r, doc := range docs {
		words := doc.WordSet()
		for s := 0; s < nS; s++ {
			res, err := core.IntersectionSizeReceiver(ctx, cfg, conn, words)
			if err != nil {
				return nil, fmt.Errorf("docshare: pair (%d,%d): %w", r, s, err)
			}
			score := sim(res.IntersectionSize, len(words), res.SenderSetSize)
			if score > threshold {
				matches = append(matches, Match{
					RIndex:       r,
					SIndex:       s,
					RID:          doc.ID,
					Intersection: res.IntersectionSize,
					SizeR:        len(words),
					SizeS:        res.SenderSetSize,
					Score:        score,
				})
			}
		}
	}
	return matches, nil
}

// MatchSender runs enterprise S's side: it answers one intersection-size
// run per document pair.  It learns only |D_R| and each |d_R|.
func MatchSender(ctx context.Context, cfg core.Config, conn transport.Conn, docs []Document) error {
	nR, err := exchangeCounts(ctx, conn, len(docs), false)
	if err != nil {
		return fmt.Errorf("docshare: exchanging corpus sizes: %w", err)
	}
	for r := 0; r < nR; r++ {
		for s, doc := range docs {
			if _, err := core.IntersectionSizeSender(ctx, cfg, conn, doc.WordSet()); err != nil {
				return fmt.Errorf("docshare: pair (%d,%d): %w", r, s, err)
			}
		}
	}
	return nil
}

// exchangeCounts swaps corpus sizes (|D_R| and |D_S| are mutually
// revealed, as in the paper's cost analysis).  sendFirst breaks the
// deadlock: the receiver sends first.
func exchangeCounts(ctx context.Context, conn transport.Conn, mine int, sendFirst bool) (theirs int, err error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(mine))
	recv := func() error {
		frame, err := conn.Recv(ctx)
		if err != nil {
			return err
		}
		if len(frame) != 8 {
			return fmt.Errorf("docshare: bad count frame of %d bytes", len(frame))
		}
		n := binary.BigEndian.Uint64(frame)
		const maxCorpus = 1 << 20
		if n > maxCorpus {
			return fmt.Errorf("docshare: peer announced %d documents (max %d)", n, maxCorpus)
		}
		theirs = int(n)
		return nil
	}
	if sendFirst {
		if err := conn.Send(ctx, buf[:]); err != nil {
			return 0, err
		}
		if err := recv(); err != nil {
			return 0, err
		}
	} else {
		if err := recv(); err != nil {
			return 0, err
		}
		if err := conn.Send(ctx, buf[:]); err != nil {
			return 0, err
		}
	}
	return theirs, nil
}

// PlaintextMatches is the reference computation: the same similarity
// filter evaluated with full knowledge of both corpora.
func PlaintextMatches(docsR, docsS []Document, sim Similarity, threshold float64) []Match {
	if sim == nil {
		sim = DiceLike
	}
	var out []Match
	for r, dR := range docsR {
		wordsR := dR.WordSet()
		setR := make(map[string]struct{}, len(wordsR))
		for _, w := range wordsR {
			setR[string(w)] = struct{}{}
		}
		for s, dS := range docsS {
			wordsS := dS.WordSet()
			inter := 0
			for _, w := range wordsS {
				if _, ok := setR[string(w)]; ok {
					inter++
				}
			}
			score := sim(inter, len(wordsR), len(wordsS))
			if score > threshold {
				out = append(out, Match{
					RIndex: r, SIndex: s, RID: dR.ID,
					Intersection: inter, SizeR: len(wordsR), SizeS: len(wordsS),
					Score: score,
				})
			}
		}
	}
	return out
}
