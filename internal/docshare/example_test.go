package docshare_test

import (
	"fmt"

	"minshare/internal/docshare"
)

// TF·IDF preprocessing reduces each document to its most significant
// words — the abstraction step of Application 1.
func ExampleSignificantWords() {
	corpus := [][]string{
		docshare.Tokenize("the turbine blade cooling duct, the thermal coating"),
		docshare.Tokenize("the privacy preserving database join, the encryption"),
	}
	for i, words := range docshare.SignificantWords(corpus, 3) {
		fmt.Printf("doc %d: %v\n", i, words)
	}
	// Output:
	// doc 0: [blade coating cooling]
	// doc 1: [database encryption join]
}
