package docshare

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/transport"
)

func testCfg(seed int64) core.Config {
	return core.Config{
		Group:       group.TestGroup(),
		Rand:        rand.New(rand.NewSource(seed)),
		Parallelism: 1,
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! foo-bar BAZ_42  ")
	want := []string{"hello", "world", "foo", "bar", "baz", "42"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
	if len(Tokenize("")) != 0 {
		t.Error("Tokenize(\"\") not empty")
	}
}

func TestTFIDFCommonWordsScoreZero(t *testing.T) {
	corpus := [][]string{
		{"the", "cat", "sat"},
		{"the", "dog", "ran"},
		{"the", "cow", "ate"},
	}
	scores := TFIDF(corpus)
	for i, sc := range scores {
		if sc["the"] != 0 {
			t.Errorf("doc %d: idf(\"the\") should zero its score, got %f", i, sc["the"])
		}
		for w, s := range sc {
			if w != "the" && s <= 0 {
				t.Errorf("doc %d: rare word %q scored %f", i, w, s)
			}
		}
	}
}

func TestTFIDFFrequencyWeighting(t *testing.T) {
	corpus := [][]string{
		{"alpha", "alpha", "alpha", "beta"},
		{"gamma", "delta"},
	}
	scores := TFIDF(corpus)
	if scores[0]["alpha"] <= scores[0]["beta"] {
		t.Error("more frequent in-document term did not score higher")
	}
}

func TestSignificantWords(t *testing.T) {
	corpus := [][]string{
		{"shared", "shared", "unique1", "unique2", "unique3"},
		{"shared", "other1", "other2"},
	}
	sig := SignificantWords(corpus, 2)
	if len(sig) != 2 {
		t.Fatalf("got %d docs", len(sig))
	}
	for i, words := range sig {
		if len(words) > 2 {
			t.Errorf("doc %d kept %d words, want ≤ 2", i, len(words))
		}
		if !sort.StringsAreSorted(words) {
			t.Errorf("doc %d words not sorted: %v", i, words)
		}
		for _, w := range words {
			if w == "shared" {
				t.Errorf("doc %d kept the common word over rare ones", i)
			}
		}
	}
}

func TestSimilarityFunctions(t *testing.T) {
	if got := DiceLike(5, 10, 10); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("DiceLike(5,10,10) = %f, want 0.25", got)
	}
	if DiceLike(0, 0, 0) != 0 {
		t.Error("DiceLike degenerate case")
	}
	if got := Jaccard(5, 10, 10); math.Abs(got-5.0/15.0) > 1e-9 {
		t.Errorf("Jaccard(5,10,10) = %f", got)
	}
	if Jaccard(0, 0, 0) != 0 {
		t.Error("Jaccard degenerate case")
	}
}

func TestWordSetDedupes(t *testing.T) {
	d := Document{ID: "x", Words: []string{"a", "b", "a"}}
	if len(d.WordSet()) != 2 {
		t.Error("WordSet kept duplicates")
	}
}

// runMatching executes the full two-party document matching over a pipe.
func runMatching(t *testing.T, docsR, docsS []Document, sim Similarity, threshold float64) []Match {
	t.Helper()
	ctx := context.Background()
	connR, connS := transport.Pipe()
	defer connR.Close()

	errCh := make(chan error, 1)
	go func() {
		errCh <- MatchSender(ctx, testCfg(2), connS, docsS)
	}()
	matches, err := MatchReceiver(ctx, testCfg(1), connR, docsR, sim, threshold)
	if err != nil {
		t.Fatalf("receiver: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("sender: %v", err)
	}
	return matches
}

func TestMatchingAgainstPlaintext(t *testing.T) {
	docsR := []Document{
		{ID: "r-patents", Words: strings.Fields("encryption protocol database privacy join")},
		{ID: "r-shopping", Words: strings.Fields("turbine blade cooling alloy")},
		{ID: "r-unrelated", Words: strings.Fields("cooking pasta tomato basil")},
	}
	docsS := []Document{
		{ID: "s-crypto", Words: strings.Fields("encryption privacy protocol key exchange")},
		{ID: "s-engine", Words: strings.Fields("turbine cooling duct alloy fatigue")},
		{ID: "s-noise", Words: strings.Fields("volleyball sand beach")},
	}
	const threshold = 0.2

	got := runMatching(t, docsR, docsS, DiceLike, threshold)
	want := PlaintextMatches(docsR, docsS, DiceLike, threshold)

	if len(got) != len(want) {
		t.Fatalf("private matching found %d pairs, plaintext %d", len(got), len(want))
	}
	for i := range got {
		if got[i].RIndex != want[i].RIndex || got[i].SIndex != want[i].SIndex {
			t.Errorf("pair %d: got (%d,%d), want (%d,%d)",
				i, got[i].RIndex, got[i].SIndex, want[i].RIndex, want[i].SIndex)
		}
		if got[i].Intersection != want[i].Intersection {
			t.Errorf("pair %d: intersection %d, want %d", i, got[i].Intersection, want[i].Intersection)
		}
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Errorf("pair %d: score %f, want %f", i, got[i].Score, want[i].Score)
		}
	}
	// The crypto pair and the engine pair should match; cooking/volleyball
	// should not.
	if len(got) != 2 {
		t.Errorf("expected exactly 2 matching pairs, got %d: %+v", len(got), got)
	}
}

func TestMatchingThresholdOne(t *testing.T) {
	// Threshold 1 is unreachable for DiceLike (max 0.5): no matches.
	docs := []Document{{ID: "d", Words: []string{"a", "b"}}}
	got := runMatching(t, docs, docs, DiceLike, 1.0)
	if len(got) != 0 {
		t.Errorf("threshold 1 matched %d pairs", len(got))
	}
}

func TestMatchingIdenticalDocs(t *testing.T) {
	docs := []Document{{ID: "d", Words: []string{"a", "b", "c"}}}
	got := runMatching(t, docs, docs, DiceLike, 0.49)
	if len(got) != 1 {
		t.Fatalf("identical docs did not match: %d", len(got))
	}
	if got[0].Intersection != 3 || got[0].Score != 0.5 {
		t.Errorf("match = %+v", got[0])
	}
}

func TestMatchingEmptyCorpora(t *testing.T) {
	if got := runMatching(t, nil, nil, DiceLike, 0.1); len(got) != 0 {
		t.Error("empty corpora matched")
	}
	docs := []Document{{ID: "d", Words: []string{"a"}}}
	if got := runMatching(t, docs, nil, DiceLike, 0.1); len(got) != 0 {
		t.Error("empty S corpus matched")
	}
	if got := runMatching(t, nil, docs, DiceLike, 0.1); len(got) != 0 {
		t.Error("empty R corpus matched")
	}
}

func TestMatchingDefaultSimilarity(t *testing.T) {
	docs := []Document{{ID: "d", Words: []string{"a", "b", "c"}}}
	got := runMatching(t, docs, docs, nil, 0.4) // nil selects DiceLike
	if len(got) != 1 {
		t.Errorf("default similarity failed: %d matches", len(got))
	}
}

func TestPlaintextMatchesNilSim(t *testing.T) {
	docs := []Document{{ID: "d", Words: []string{"a"}}}
	if got := PlaintextMatches(docs, docs, nil, 0.3); len(got) != 1 {
		t.Errorf("PlaintextMatches nil sim: %d", len(got))
	}
}
