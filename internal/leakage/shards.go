package leakage

import (
	"fmt"
	"math"
)

// Shard-split leakage.
//
// A shard-parallel session (core.Config.Shards = k) reveals one thing
// its unsharded counterpart does not: each sub-handshake announces that
// bucket's size, so the peer learns the vector (n_1, …, n_k) of
// per-shard set sizes rather than only the total n.  Because the
// partitioner routes each value by SHA-256 of its oracle hash, an
// honest split is a draw from the uniform multinomial over k bins —
// the sizes carry no information about *which* values a party holds,
// only a statistical fingerprint of the set.  ShardSplit quantifies
// that fingerprint in bits.

// SplitLeak quantifies what a per-shard size vector reveals beyond the
// total set size.
type SplitLeak struct {
	// Total is n = Σ n_i, already revealed by the outer handshake.
	Total int
	// Shards is k, the negotiated shard count (public).
	Shards int
	// SurprisalBits is −log₂ P(n_1, …, n_k) under the uniform
	// multinomial: the information content of this particular observed
	// split.  A perfectly balanced split of a large set scores lowest;
	// a degenerate split (all values in one bucket) scores the maximum
	// n·log₂ k, and is also evidence of a dishonestly partitioned set.
	SurprisalBits float64
	// SupportBits is log₂ of the number of possible splits of n into k
	// ordered buckets, C(n+k−1, k−1): the bits needed to transmit any
	// split verbatim, and an upper bound on the *average* leakage (the
	// multinomial's entropy) — though not on the surprisal of a single
	// skewed outcome.
	SupportBits float64
}

// ShardSplit computes the leakage of one observed per-shard size
// vector.  It panics on an empty vector or a negative size, which
// cannot arise from a decoded handshake.
func ShardSplit(sizes []int) SplitLeak {
	k := len(sizes)
	if k == 0 {
		panic("leakage: empty shard-size vector")
	}
	n := 0
	for _, s := range sizes {
		if s < 0 {
			panic(fmt.Sprintf("leakage: negative shard size %d", s))
		}
		n += s
	}
	// −log₂ P = n·log₂ k − log₂(n! / Π n_i!), via log-gamma so
	// million-element sets stay exact to floating precision.
	logMult := lgammaInt(n + 1)
	for _, s := range sizes {
		logMult -= lgammaInt(s + 1)
	}
	surprisal := float64(n)*math.Log2(float64(k)) - logMult/math.Ln2
	if surprisal < 0 {
		surprisal = 0 // guard tiny negative rounding at k = 1
	}
	return SplitLeak{
		Total:         n,
		Shards:        k,
		SurprisalBits: surprisal,
		SupportBits:   logChoose(n+k-1, k-1) / math.Ln2,
	}
}

// lgammaInt returns ln(m!) = lnΓ(m+1) for m ≥ 0... the argument here is
// m+1 already, i.e. lgammaInt(x) = lnΓ(x).
func lgammaInt(x int) float64 {
	v, _ := math.Lgamma(float64(x))
	return v
}

// logChoose returns ln C(n, r).
func logChoose(n, r int) float64 {
	if r < 0 || r > n {
		return math.Inf(-1)
	}
	return lgammaInt(n+1) - lgammaInt(r+1) - lgammaInt(n-r+1)
}
