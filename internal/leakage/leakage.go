// Package leakage quantifies what the paper's protocols reveal beyond
// their nominal answers, and implements the first-line defences of
// Section 2.3 against multi-query composition attacks.
//
// The headline object is the Section 5.2 characterization of the
// equijoin-size protocol: partition each side's values by duplicate
// count — V_R(d) holds the values occurring d times in T_R.A — and then
// R learns |V_R(d) ∩ V_S(d')| for every partition pair.  At one extreme
// (all duplicate counts equal) that collapses to the intersection size;
// at the other (all counts distinct) it reveals the full intersection.
// PartitionOverlapMatrix computes the matrix, and InferMembers derives
// the value-level facts R can deduce from it.
package leakage

import (
	"fmt"
	"sort"
)

// Matrix is the Section 5.2 leakage object: Matrix[d][d'] =
// |V_R(d) ∩ V_S(d')|, the number of values occurring exactly d times on
// R's side and d' times on S's side.
type Matrix map[int]map[int]int

// PartitionOverlapMatrix computes the leakage matrix from the two
// plaintext multisets.  This is the *reference*: tests verify that what
// the receiver can actually reconstruct from an equijoin-size transcript
// (see FromCounts) equals it.
func PartitionOverlapMatrix(vR, vS [][]byte) Matrix {
	cR := counts(vR)
	cS := counts(vS)
	m := Matrix{}
	for v, d := range cR {
		dPrime, shared := cS[v]
		if !shared {
			continue
		}
		row := m[d]
		if row == nil {
			row = map[int]int{}
			m[d] = row
		}
		row[dPrime]++
	}
	return m
}

// FromCounts reconstructs the same matrix the way the receiver actually
// can: from the multiplicity tallies of the doubly-encrypted multisets
// Z_R and Z_S (keyed by opaque ciphertext strings).  R never sees values,
// only repeated ciphertexts — yet that suffices.
func FromCounts(zR, zS map[string]int) Matrix {
	m := Matrix{}
	for z, d := range zR {
		dPrime, shared := zS[z]
		if !shared {
			continue
		}
		row := m[d]
		if row == nil {
			row = map[int]int{}
			m[d] = row
		}
		row[dPrime]++
	}
	return m
}

// Equal reports whether two matrices are identical.
func (m Matrix) Equal(o Matrix) bool {
	if len(m) != len(o) {
		return false
	}
	for d, row := range m {
		oRow, ok := o[d]
		if !ok || len(row) != len(oRow) {
			return false
		}
		for dp, n := range row {
			if oRow[dp] != n {
				return false
			}
		}
	}
	return true
}

// JoinSize returns Σ d·d'·Matrix[d][d'], the join cardinality implied by
// the matrix — a consistency check against the protocol's answer.
func (m Matrix) JoinSize() int {
	n := 0
	for d, row := range m {
		for dPrime, cnt := range row {
			n += d * dPrime * cnt
		}
	}
	return n
}

// IntersectionSize returns Σ Matrix[d][d'], the number of shared
// distinct values.
func (m Matrix) IntersectionSize() int {
	n := 0
	for _, row := range m {
		for _, cnt := range row {
			n += cnt
		}
	}
	return n
}

// String renders the matrix with sorted keys for stable test output.
func (m Matrix) String() string {
	var ds []int
	for d := range m {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	out := ""
	for _, d := range ds {
		var dps []int
		for dp := range m[d] {
			dps = append(dps, dp)
		}
		sort.Ints(dps)
		for _, dp := range dps {
			out += fmt.Sprintf("|V_R(%d) ∩ V_S(%d)| = %d\n", d, dp, m[d][dp])
		}
	}
	return out
}

// Inference is a value-level fact the receiver can deduce from the
// leakage matrix combined with knowledge of its own multiset.
type Inference struct {
	// Value is one of R's own values.
	Value []byte
	// InSender is true when R can prove v ∈ V_S, false when R can prove
	// v ∉ V_S.  (Values about which nothing definite follows are not
	// reported.)
	InSender bool
	// SenderDuplicates is v's duplicate count in T_S.A when InSender
	// and the count is determined (0 if ambiguous).
	SenderDuplicates int
}

// InferMembers derives all definite membership facts: for each duplicate
// count d, if every value of V_R(d) matched (row sums to |V_R(d)|) then
// all of them are in V_S; if none matched, none are.  When additionally
// the matched values of V_R(d) all fall in a single V_S(d'), their
// sender-side duplicate count is determined too.  This realizes the
// paper's observation that with all-distinct duplicate counts R learns
// V_R ∩ V_S exactly.
func InferMembers(vR [][]byte, m Matrix) []Inference {
	cR := counts(vR)
	// Group R's distinct values by their duplicate count.
	byCount := map[int][]string{}
	for v, d := range cR {
		byCount[d] = append(byCount[d], v)
	}
	var out []Inference
	var ds []int
	for d := range byCount {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	for _, d := range ds {
		vsOfD := byCount[d]
		sort.Strings(vsOfD)
		matched := 0
		uniqueDPrime := -1
		for dPrime, cnt := range m[d] {
			matched += cnt
			if cnt > 0 {
				if uniqueDPrime == -1 {
					uniqueDPrime = dPrime
				} else {
					uniqueDPrime = -2 // more than one d' present
				}
			}
		}
		switch matched {
		case 0:
			for _, v := range vsOfD {
				out = append(out, Inference{Value: []byte(v), InSender: false})
			}
		case len(vsOfD):
			for _, v := range vsOfD {
				inf := Inference{Value: []byte(v), InSender: true}
				if uniqueDPrime >= 0 {
					inf.SenderDuplicates = uniqueDPrime
				}
				out = append(out, inf)
			}
		}
	}
	return out
}

func counts(vs [][]byte) map[string]int {
	out := make(map[string]int, len(vs))
	for _, v := range vs {
		out[string(v)]++
	}
	return out
}
