package leakage

import (
	"math"
	"testing"
)

func TestShardSplitDegenerate(t *testing.T) {
	// All values in one bucket: the multinomial coefficient is 1, so the
	// surprisal is exactly n·log₂ k.
	const n, k = 1000, 8
	sizes := make([]int, k)
	sizes[0] = n
	l := ShardSplit(sizes)
	if l.Total != n || l.Shards != k {
		t.Fatalf("total/shards = %d/%d, want %d/%d", l.Total, l.Shards, n, k)
	}
	want := float64(n) * math.Log2(k)
	if math.Abs(l.SurprisalBits-want) > 1e-6 {
		t.Errorf("degenerate surprisal = %v bits, want exactly n·log2(k) = %v", l.SurprisalBits, want)
	}
}

func TestShardSplitBalancedBeatsSkewed(t *testing.T) {
	const k = 8
	balanced := []int{125, 125, 125, 125, 125, 125, 125, 125}
	skewed := []int{500, 300, 100, 50, 20, 15, 10, 5}
	b, s := ShardSplit(balanced), ShardSplit(skewed)
	if b.Total != 1000 || s.Total != 1000 {
		t.Fatalf("totals = %d/%d, want 1000", b.Total, s.Total)
	}
	if b.SurprisalBits >= s.SurprisalBits {
		t.Errorf("balanced split (%v bits) should be less surprising than skewed (%v bits)",
			b.SurprisalBits, s.SurprisalBits)
	}
	// A typical honest split leaks a few dozen bits, not anywhere near
	// the n·log₂ k of a full membership reveal.
	if max := float64(1000) * math.Log2(k) / 10; b.SurprisalBits > max {
		t.Errorf("balanced surprisal = %v bits, implausibly high", b.SurprisalBits)
	}
}

func TestShardSplitSupportBits(t *testing.T) {
	// C(4+2-1, 1) = 5 splits of 4 into 2 buckets: log2(5) bits.
	l := ShardSplit([]int{3, 1})
	if want := math.Log2(5); math.Abs(l.SupportBits-want) > 1e-9 {
		t.Errorf("support bits = %v, want log2(5) = %v", l.SupportBits, want)
	}
}

func TestShardSplitSingleShard(t *testing.T) {
	// k = 1 reveals nothing beyond the total: one possible split, zero
	// surprisal.
	l := ShardSplit([]int{42})
	if l.SurprisalBits != 0 || l.SupportBits != 0 {
		t.Errorf("k=1 leak = %v/%v bits, want 0/0", l.SurprisalBits, l.SupportBits)
	}
}

func TestShardSplitExactSmallCase(t *testing.T) {
	// By hand: P(2,1) under 3 values into 2 bins = C(3;2,1)·2⁻³ = 3/8,
	// surprisal = log2(8/3).
	l := ShardSplit([]int{2, 1})
	if want := math.Log2(8.0 / 3.0); math.Abs(l.SurprisalBits-want) > 1e-9 {
		t.Errorf("surprisal = %v, want %v", l.SurprisalBits, want)
	}
}
