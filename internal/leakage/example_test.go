package leakage_test

import (
	"fmt"

	"minshare/internal/leakage"
)

// The paper's second extreme for the equijoin-size protocol: when no two
// values share a duplicate count, the leakage matrix pins down the whole
// intersection.
func ExampleInferMembers() {
	vR := [][]byte{
		[]byte("a"),
		[]byte("b"), []byte("b"),
		[]byte("c"), []byte("c"), []byte("c"),
	}
	vS := [][]byte{
		[]byte("a"), []byte("a"), []byte("a"), []byte("a"),
		[]byte("c"),
	}
	m := leakage.PartitionOverlapMatrix(vR, vS)
	for _, inf := range leakage.InferMembers(vR, m) {
		if inf.InSender {
			fmt.Printf("%s is in V_S (with %d duplicates)\n", inf.Value, inf.SenderDuplicates)
		} else {
			fmt.Printf("%s is NOT in V_S\n", inf.Value)
		}
	}
	// Output:
	// a is in V_S (with 4 duplicates)
	// b is NOT in V_S
	// c is in V_S (with 1 duplicates)
}
