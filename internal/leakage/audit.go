package leakage

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Query restriction and auditing — the Section 2.3 "first line of
// defence" against what parties might learn by combining the results of
// multiple queries.  The paper points to three technique families from
// the statistical-database literature: restricting the size of query
// results [17, 23], controlling the overlap among successive queries
// [19], and keeping audit trails of all answered queries to detect
// possible compromises [13].  Auditor implements all three for set-input
// protocols.

// Common audit errors.
var (
	// ErrResultTooSmall blocks queries whose input set is below the
	// minimum (tiny sets enable tracker-style isolation of individuals).
	ErrResultTooSmall = errors.New("leakage: query set below minimum size")
	// ErrResultTooLarge blocks queries whose input set is above the maximum.
	ErrResultTooLarge = errors.New("leakage: query set above maximum size")
	// ErrOverlapTooHigh blocks a query overlapping a previous one too much.
	ErrOverlapTooHigh = errors.New("leakage: query overlaps a previous query beyond the allowed fraction")
	// ErrQueryBudget blocks queries beyond the per-peer budget.
	ErrQueryBudget = errors.New("leakage: query budget exhausted")
)

// AuditPolicy configures the restriction rules.
type AuditPolicy struct {
	// MinSetSize and MaxSetSize bound the input set cardinality
	// (result-size restriction à la Fellegi / Denning).  Zero disables a
	// bound.
	MinSetSize, MaxSetSize int
	// MaxOverlapFraction ∈ [0,1] bounds |Q_new ∩ Q_old| / |Q_new| against
	// every previously answered query (Dobkin-Jones-Lipton overlap
	// control).  1 disables the check; 0 forbids any overlap.
	MaxOverlapFraction float64
	// MaxQueries bounds the number of answered queries per peer.  Zero
	// disables the bound.
	MaxQueries int
}

// DefaultPolicy mirrors common statistical-database practice: sets of at
// least 5 values, at most 50% overlap with any earlier query, at most
// 1000 queries per peer.
var DefaultPolicy = AuditPolicy{
	MinSetSize:         5,
	MaxOverlapFraction: 0.5,
	MaxQueries:         1000,
}

// SessionStats carries observed facts about an answered session into the
// audit trail: how much left the machine, how long the run took, and the
// per-phase timing breakdown (a rendered span line).  The auditor treats
// them as opaque annotations — they never influence a policy decision —
// so this package stays independent of the observability layer.
type SessionStats struct {
	// Bytes is the total on-wire traffic of the session, both directions.
	Bytes int64
	// Duration is the wall-clock length of the session.
	Duration time.Duration
	// Spans is a rendered per-phase timing line, e.g.
	// "hash-to-group=1.2ms bulk-encrypt=10ms exchange=0.3ms".
	Spans string
}

// AuditEntry records one answered query.
type AuditEntry struct {
	Peer     string
	Protocol string
	SetSize  int
	Time     time.Time
	// Stats holds observed session measurements when the caller collected
	// them (zero otherwise).
	Stats SessionStats
}

// Auditor enforces an AuditPolicy and keeps the audit trail.  It is safe
// for concurrent use.
type Auditor struct {
	policy AuditPolicy

	mu      sync.Mutex
	trail   []AuditEntry
	history map[string][]map[string]struct{} // peer → answered query sets
	now     func() time.Time
}

// NewAuditor builds an auditor with the given policy.
func NewAuditor(policy AuditPolicy) *Auditor {
	return &Auditor{
		policy:  policy,
		history: make(map[string][]map[string]struct{}),
		now:     time.Now,
	}
}

// Check validates a proposed query set against the policy WITHOUT
// recording it.  A nil error means the query may run.
func (a *Auditor) Check(peer, protocol string, values [][]byte) error {
	set := toSet(values)
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.checkLocked(peer, set)
}

func (a *Auditor) checkLocked(peer string, set map[string]struct{}) error {
	if a.policy.MinSetSize > 0 && len(set) < a.policy.MinSetSize {
		return fmt.Errorf("%w: %d < %d", ErrResultTooSmall, len(set), a.policy.MinSetSize)
	}
	if a.policy.MaxSetSize > 0 && len(set) > a.policy.MaxSetSize {
		return fmt.Errorf("%w: %d > %d", ErrResultTooLarge, len(set), a.policy.MaxSetSize)
	}
	if a.policy.MaxQueries > 0 && len(a.history[peer]) >= a.policy.MaxQueries {
		return fmt.Errorf("%w: %d queries answered for %q", ErrQueryBudget, len(a.history[peer]), peer)
	}
	if a.policy.MaxOverlapFraction < 1 && len(set) > 0 {
		for _, old := range a.history[peer] {
			overlap := 0
			for v := range set {
				if _, ok := old[v]; ok {
					overlap++
				}
			}
			frac := float64(overlap) / float64(len(set))
			if frac > a.policy.MaxOverlapFraction {
				return fmt.Errorf("%w: %.0f%% > %.0f%%", ErrOverlapTooHigh,
					frac*100, a.policy.MaxOverlapFraction*100)
			}
		}
	}
	return nil
}

// Approve atomically checks a query and, if allowed, records it in the
// audit trail.  Protocol code calls this before answering a peer.
func (a *Auditor) Approve(peer, protocol string, values [][]byte) error {
	return a.ApproveSession(peer, protocol, values, SessionStats{})
}

// ApproveSession is Approve with observed session measurements attached
// to the trail entry.
func (a *Auditor) ApproveSession(peer, protocol string, values [][]byte, stats SessionStats) error {
	set := toSet(values)
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.checkLocked(peer, set); err != nil {
		return err
	}
	a.history[peer] = append(a.history[peer], set)
	a.trail = append(a.trail, AuditEntry{
		Peer:     peer,
		Protocol: protocol,
		SetSize:  len(set),
		Time:     a.now(),
		Stats:    stats,
	})
	return nil
}

// Trail returns a copy of the audit trail.
func (a *Auditor) Trail() []AuditEntry {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]AuditEntry(nil), a.trail...)
}

func toSet(values [][]byte) map[string]struct{} {
	set := make(map[string]struct{}, len(values))
	for _, v := range values {
		set[string(v)] = struct{}{}
	}
	return set
}
