package leakage

import "math"

// Standing-query (delta-push) leakage.
//
// A standing query reveals, per SubUpdate, three things a fresh
// protocol run would not:
//
//   - Churn cardinalities: the receiver sees exactly how many values
//     entered and left the sender's set between two versions — a
//     one-shot re-run would only reveal the new total |V_S|.
//   - Update timing: each push timestamps a mutation batch of the
//     private database (mitigated by batching deltas before pushing).
//   - Codeword linkability: the pushed elements live in the same
//     f_eS-encrypted domain as the base run, so the receiver can link a
//     deletion to the *specific earlier codeword* that disappeared.
//     For a value in V_R this is exactly the updated intersection — the
//     permitted output.  For a value outside V_R the receiver still
//     learns that one particular (opaque) codeword it has been shown
//     before is gone, e.g. that the value deleted now is the same one
//     inserted three updates ago.  Under the random-oracle/POWER-
//     function assumptions the codeword itself remains indistinguishable
//     from random, so linkability never identifies the value — it is a
//     pseudonymous identifier with the lifetime of the pinned e_S (one
//     key rotation ends it).
//
// DeltaUpdate quantifies the first component in bits and reports the
// linkable codeword count for the third; timing is deployment-specific.

// DeltaLeak quantifies what one pushed update reveals beyond the
// updated result itself.
type DeltaLeak struct {
	// Inserts and Deletes are the pushed churn cardinalities.
	Inserts, Deletes int
	// Total is |V_S| after the update (already revealed by the base
	// handshake plus the running churn, so it is the reference scale,
	// not itself fresh leakage).
	Total int
	// CardinalityBits is the information content of the pair
	// (Inserts, Deletes) under the uniform reference over {0, …, Total}
	// per component: 2·log₂(Total+1) bits.  As with SplitLeak this is a
	// worst-case yardstick — the bits needed to transmit the pair
	// verbatim — not a statement about any particular churn
	// distribution.
	CardinalityBits float64
	// LinkedCodewords counts the pushed elements the receiver can link
	// to codewords it has seen before under the same pinned key: every
	// deletion (the codeword must have been shipped earlier to be
	// deletable), plus any insert of a codeword that previously churned
	// out and back in.  Conservatively this equals Deletes; re-inserts
	// are counted by the caller if it tracks them.
	LinkedCodewords int
}

// DeltaUpdate computes the leakage of one standing-query update
// carrying nIns inserts and nDel deletes against a sender set of size
// total after the update.  It panics on negative counts, which cannot
// arise from a decoded SubUpdate.
func DeltaUpdate(nIns, nDel, total int) DeltaLeak {
	if nIns < 0 || nDel < 0 || total < 0 {
		panic("leakage: negative delta cardinality")
	}
	return DeltaLeak{
		Inserts:         nIns,
		Deletes:         nDel,
		Total:           total,
		CardinalityBits: 2 * math.Log2(float64(total)+1),
		LinkedCodewords: nDel,
	}
}
