package leakage

import (
	"math"
	"testing"
)

func TestDeltaUpdate(t *testing.T) {
	d := DeltaUpdate(3, 2, 100)
	if d.Inserts != 3 || d.Deletes != 2 || d.Total != 100 {
		t.Fatalf("echoed fields = %+v", d)
	}
	if want := 2 * math.Log2(101); math.Abs(d.CardinalityBits-want) > 1e-12 {
		t.Errorf("CardinalityBits = %v, want %v", d.CardinalityBits, want)
	}
	if d.LinkedCodewords != 2 {
		t.Errorf("LinkedCodewords = %d, want the deletion count 2", d.LinkedCodewords)
	}

	// An empty update against an empty set reveals nothing.
	if z := DeltaUpdate(0, 0, 0); z.CardinalityBits != 0 || z.LinkedCodewords != 0 {
		t.Errorf("zero update leaks %+v", z)
	}
}

func TestDeltaUpdatePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative cardinality accepted")
		}
	}()
	DeltaUpdate(-1, 0, 0)
}
