package leakage

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func multiset(spec map[string]int) [][]byte {
	var out [][]byte
	for v, n := range spec {
		for i := 0; i < n; i++ {
			out = append(out, []byte(v))
		}
	}
	return out
}

func TestPartitionOverlapMatrixBasic(t *testing.T) {
	vR := multiset(map[string]int{"a": 3, "b": 1, "c": 2, "r": 1})
	vS := multiset(map[string]int{"a": 2, "b": 3, "s": 1})

	m := PartitionOverlapMatrix(vR, vS)
	// a: d=3,d'=2; b: d=1,d'=3.
	if m[3][2] != 1 || m[1][3] != 1 {
		t.Errorf("matrix = %v", m)
	}
	if m.IntersectionSize() != 2 {
		t.Errorf("IntersectionSize = %d, want 2", m.IntersectionSize())
	}
	if want := 3*2 + 1*3; m.JoinSize() != want {
		t.Errorf("JoinSize = %d, want %d", m.JoinSize(), want)
	}
}

// TestFromCountsEqualsPlaintextMatrix is the key claim of Section 5.2:
// the receiver, seeing only the doubly-encrypted multisets, reconstructs
// exactly the partition-level overlap matrix.
func TestFromCountsEqualsPlaintextMatrix(t *testing.T) {
	vR := multiset(map[string]int{"a": 3, "b": 1, "c": 2, "r": 1})
	vS := multiset(map[string]int{"a": 2, "b": 3, "s": 4})

	// Simulate the protocol's view: replace each value with an opaque
	// "ciphertext" (any injective relabelling models the double
	// encryption — it preserves exactly multiplicity structure).
	enc := func(v string) string { return "enc(" + v + ")" }
	zR := map[string]int{}
	for _, v := range vR {
		zR[enc(string(v))]++
	}
	zS := map[string]int{}
	for _, v := range vS {
		zS[enc(string(v))]++
	}

	fromView := FromCounts(zR, zS)
	fromPlain := PartitionOverlapMatrix(vR, vS)
	if !fromView.Equal(fromPlain) {
		t.Errorf("view matrix %v != plaintext matrix %v", fromView, fromPlain)
	}
}

func TestMatrixEqual(t *testing.T) {
	a := Matrix{1: {2: 3}}
	b := Matrix{1: {2: 3}}
	c := Matrix{1: {2: 4}}
	d := Matrix{1: {2: 3}, 2: {1: 1}}
	e := Matrix{1: {2: 3, 4: 1}}
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) || a.Equal(e) {
		t.Error("Matrix.Equal wrong")
	}
}

func TestMatrixString(t *testing.T) {
	m := Matrix{2: {3: 1}, 1: {1: 5}}
	s := m.String()
	if !strings.Contains(s, "|V_R(1) ∩ V_S(1)| = 5") || !strings.Contains(s, "|V_R(2) ∩ V_S(3)| = 1") {
		t.Errorf("String() = %q", s)
	}
	// Sorted: d=1 line first.
	if strings.Index(s, "V_R(1)") > strings.Index(s, "V_R(2)") {
		t.Error("String() not sorted")
	}
}

// TestInferUniformDuplicatesRevealOnlySize reproduces the paper's first
// extreme: "if all values have the same number of duplicates ..., R only
// learns |V_R ∩ V_S|" — membership of individual values stays ambiguous
// unless all or none matched.
func TestInferUniformDuplicatesRevealOnlySize(t *testing.T) {
	vR := multiset(map[string]int{"a": 1, "b": 1, "c": 1, "d": 1})
	vS := multiset(map[string]int{"a": 1, "b": 1, "x": 1})

	m := PartitionOverlapMatrix(vR, vS)
	inf := InferMembers(vR, m)
	// 2 of the 4 values in V_R(1) matched: no definite fact about any
	// individual value.
	if len(inf) != 0 {
		t.Errorf("uniform duplicates leaked value-level facts: %+v", inf)
	}
}

// TestInferDistinctDuplicatesRevealEverything reproduces the paper's
// second extreme: "if no two values have the same number of duplicates,
// R will learn V_R ∩ V_S."
func TestInferDistinctDuplicatesRevealEverything(t *testing.T) {
	vR := multiset(map[string]int{"a": 1, "b": 2, "c": 3, "d": 4})
	vS := multiset(map[string]int{"a": 5, "c": 6, "z": 1})

	m := PartitionOverlapMatrix(vR, vS)
	inf := InferMembers(vR, m)
	got := map[string]Inference{}
	for _, i := range inf {
		got[string(i.Value)] = i
	}
	// All four values are decided.
	if len(got) != 4 {
		t.Fatalf("decided %d values, want 4: %+v", len(got), inf)
	}
	for v, wantIn := range map[string]bool{"a": true, "b": false, "c": true, "d": false} {
		i, ok := got[v]
		if !ok {
			t.Errorf("no inference for %q", v)
			continue
		}
		if i.InSender != wantIn {
			t.Errorf("%q: InSender = %v, want %v", v, i.InSender, wantIn)
		}
	}
	// Sender-side duplicate counts are pinned for the matched values.
	if got["a"].SenderDuplicates != 5 || got["c"].SenderDuplicates != 6 {
		t.Errorf("sender duplicate counts: a=%d c=%d, want 5, 6",
			got["a"].SenderDuplicates, got["c"].SenderDuplicates)
	}
}

func TestInferAllMatchedPartition(t *testing.T) {
	// Both values with d=2 matched, but into different d' buckets: their
	// membership is certain, their sender counts are not.
	vR := multiset(map[string]int{"a": 2, "b": 2})
	vS := multiset(map[string]int{"a": 1, "b": 3})
	m := PartitionOverlapMatrix(vR, vS)
	inf := InferMembers(vR, m)
	if len(inf) != 2 {
		t.Fatalf("decided %d values, want 2", len(inf))
	}
	for _, i := range inf {
		if !i.InSender {
			t.Errorf("%q should be in sender", i.Value)
		}
		if i.SenderDuplicates != 0 {
			t.Errorf("%q: sender count should be ambiguous, got %d", i.Value, i.SenderDuplicates)
		}
	}
}

func TestMatrixConsistencyProperty(t *testing.T) {
	f := func(dupsR, dupsS []uint8) bool {
		specR := map[string]int{}
		for i, d := range dupsR {
			if i >= 6 {
				break
			}
			if n := int(d % 5); n > 0 {
				specR[string(rune('a'+i))] = n
			}
		}
		specS := map[string]int{}
		for i, d := range dupsS {
			if i >= 6 {
				break
			}
			if n := int(d % 5); n > 0 {
				specS[string(rune('a'+i))] = n
			}
		}
		vR := multiset(specR)
		vS := multiset(specS)
		m := PartitionOverlapMatrix(vR, vS)

		// JoinSize from the matrix equals the direct computation.
		direct := 0
		for v, nR := range specR {
			direct += nR * specS[v]
		}
		if m.JoinSize() != direct {
			return false
		}
		// Intersection size equals the shared distinct count.
		shared := 0
		for v := range specR {
			if specS[v] > 0 {
				shared++
			}
		}
		return m.IntersectionSize() == shared
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// ---- auditor ----

func values(n int, prefix string) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(prefix + string(rune('0'+i%10)) + string(rune('a'+i/10)))
	}
	return out
}

func TestAuditorSizeBounds(t *testing.T) {
	a := NewAuditor(AuditPolicy{MinSetSize: 5, MaxSetSize: 10, MaxOverlapFraction: 1})
	if err := a.Approve("peer", "intersection", values(3, "q")); !errors.Is(err, ErrResultTooSmall) {
		t.Errorf("small set: %v", err)
	}
	if err := a.Approve("peer", "intersection", values(11, "q")); !errors.Is(err, ErrResultTooLarge) {
		t.Errorf("large set: %v", err)
	}
	if err := a.Approve("peer", "intersection", values(7, "q")); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
}

func TestAuditorOverlapControl(t *testing.T) {
	a := NewAuditor(AuditPolicy{MaxOverlapFraction: 0.5})
	q1 := values(10, "x")
	if err := a.Approve("peer", "intersection", q1); err != nil {
		t.Fatal(err)
	}
	// 6 of 10 values repeat: 60% overlap > 50%.
	q2 := append(append([][]byte{}, q1[:6]...), values(4, "y")...)
	if err := a.Approve("peer", "intersection", q2); !errors.Is(err, ErrOverlapTooHigh) {
		t.Errorf("overlapping query: %v", err)
	}
	// 4 of 10: 40% ≤ 50%, allowed.
	q3 := append(append([][]byte{}, q1[:4]...), values(6, "z")...)
	if err := a.Approve("peer", "intersection", q3); err != nil {
		t.Errorf("acceptable overlap rejected: %v", err)
	}
	// Different peer: independent history.
	if err := a.Approve("other", "intersection", q2); err != nil {
		t.Errorf("other peer blocked: %v", err)
	}
}

func TestAuditorQueryBudget(t *testing.T) {
	a := NewAuditor(AuditPolicy{MaxQueries: 2, MaxOverlapFraction: 1})
	for i := 0; i < 2; i++ {
		if err := a.Approve("peer", "p", values(3, string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Approve("peer", "p", values(3, "c")); !errors.Is(err, ErrQueryBudget) {
		t.Errorf("budget not enforced: %v", err)
	}
}

func TestAuditorCheckDoesNotRecord(t *testing.T) {
	a := NewAuditor(AuditPolicy{MaxQueries: 1, MaxOverlapFraction: 1})
	q := values(3, "q")
	for i := 0; i < 5; i++ {
		if err := a.Check("peer", "p", q); err != nil {
			t.Fatalf("Check %d: %v", i, err)
		}
	}
	if err := a.Approve("peer", "p", q); err != nil {
		t.Fatalf("Approve after Checks: %v", err)
	}
}

func TestAuditorTrail(t *testing.T) {
	a := NewAuditor(AuditPolicy{MaxOverlapFraction: 1})
	_ = a.Approve("alice", "intersection", values(4, "a"))
	_ = a.Approve("bob", "equijoin", values(6, "b"))
	trail := a.Trail()
	if len(trail) != 2 {
		t.Fatalf("trail has %d entries", len(trail))
	}
	if trail[0].Peer != "alice" || trail[0].Protocol != "intersection" || trail[0].SetSize != 4 {
		t.Errorf("entry 0 = %+v", trail[0])
	}
	if trail[1].Peer != "bob" || trail[1].SetSize != 6 {
		t.Errorf("entry 1 = %+v", trail[1])
	}
}

func TestDefaultPolicy(t *testing.T) {
	a := NewAuditor(DefaultPolicy)
	if err := a.Approve("p", "x", values(4, "q")); !errors.Is(err, ErrResultTooSmall) {
		t.Errorf("default min size: %v", err)
	}
	if err := a.Approve("p", "x", values(20, "q")); err != nil {
		t.Errorf("default policy rejected sane query: %v", err)
	}
}
