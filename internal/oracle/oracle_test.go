package oracle

import (
	"fmt"
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"minshare/internal/group"
)

func TestHashDeterministic(t *testing.T) {
	o := New(group.TestGroup())
	a := o.HashString("hello")
	b := o.HashString("hello")
	if a.Cmp(b) != 0 {
		t.Error("hash not deterministic")
	}
}

func TestHashDistinctInputsDistinctOutputs(t *testing.T) {
	o := New(group.TestGroup())
	seen := map[string]string{}
	for i := 0; i < 500; i++ {
		v := fmt.Sprintf("value-%d", i)
		h := o.HashString(v).String()
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision between %q and %q", prev, v)
		}
		seen[h] = v
	}
}

func TestHashLandsInGroup(t *testing.T) {
	g := group.TestGroup()
	o := New(g)
	f := func(v []byte) bool {
		return g.Contains(o.Hash(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHashLandsInSmallGroup(t *testing.T) {
	// Exercise the counter-mode expansion and reduction on a tiny modulus
	// where every arithmetic edge case is reachable.
	g := group.MustNew(big.NewInt(23))
	o := New(g)
	for i := 0; i < 200; i++ {
		h := o.Hash([]byte{byte(i)})
		if !g.Contains(h) {
			t.Fatalf("Hash landed outside QR(23): %v", h)
		}
	}
}

func TestHashCoversSmallGroup(t *testing.T) {
	// Over many inputs, the hash should reach every element of QR(23)
	// (a smoke test of near-uniformity).
	g := group.MustNew(big.NewInt(23))
	o := New(g)
	seen := map[int64]bool{}
	for i := 0; i < 2000; i++ {
		seen[o.HashString(fmt.Sprintf("%d", i)).Int64()] = true
	}
	if len(seen) != 11 {
		t.Errorf("hash reached %d of 11 elements", len(seen))
	}
}

func TestDomainSeparation(t *testing.T) {
	g := group.TestGroup()
	a := NewWithDomain(g, "alpha")
	b := NewWithDomain(g, "beta")
	if a.HashString("x").Cmp(b.HashString("x")) == 0 {
		t.Error("different domains produced equal hashes")
	}
}

func TestHashUint64MatchesBytes(t *testing.T) {
	o := New(group.TestGroup())
	h1 := o.HashUint64(0xDEADBEEF)
	h2 := o.Hash([]byte{0, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF})
	if h1.Cmp(h2) != 0 {
		t.Error("HashUint64 disagrees with Hash on big-endian bytes")
	}
}

func TestHashAllOrder(t *testing.T) {
	o := New(group.TestGroup())
	vs := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	hs := o.HashAll(vs)
	if len(hs) != 3 {
		t.Fatalf("len = %d", len(hs))
	}
	for i, v := range vs {
		if hs[i].Cmp(o.Hash(v)) != 0 {
			t.Errorf("element %d out of order", i)
		}
	}
}

func TestDetectCollisionsNoneOnDistinctValues(t *testing.T) {
	o := New(group.TestGroup())
	var vs [][]byte
	for i := 0; i < 100; i++ {
		vs = append(vs, []byte(fmt.Sprintf("v%d", i)))
	}
	if cols := DetectCollisions(o, vs); len(cols) != 0 {
		t.Errorf("unexpected collisions: %v", cols)
	}
}

func TestDetectCollisionsIgnoresDuplicateValues(t *testing.T) {
	o := New(group.TestGroup())
	vs := [][]byte{[]byte("same"), []byte("other"), []byte("same")}
	if cols := DetectCollisions(o, vs); len(cols) != 0 {
		t.Errorf("duplicates flagged as collisions: %v", cols)
	}
}

func TestDetectCollisionsFindsRealCollision(t *testing.T) {
	// On QR(23) there are only 11 possible hash values, so 40 distinct
	// inputs are guaranteed (pigeonhole) to collide.
	g := group.MustNew(big.NewInt(23))
	o := New(g)
	var vs [][]byte
	for i := 0; i < 40; i++ {
		vs = append(vs, []byte(fmt.Sprintf("x%d", i)))
	}
	cols := DetectCollisions(o, vs)
	if len(cols) == 0 {
		t.Fatal("no collisions found in tiny domain")
	}
	for _, c := range cols {
		if c.I >= c.J {
			t.Errorf("collision indices not ordered: %+v", c)
		}
		if o.Hash(vs[c.I]).Cmp(o.Hash(vs[c.J])) != 0 {
			t.Errorf("reported collision %+v does not collide", c)
		}
	}
}

// TestCollisionProbabilityPaperExample reproduces the Section 3.2.2
// computation: 1024-bit hash values (half quadratic residues), n = 1
// million, Pr[collision] ≈ 10^-295.
func TestCollisionProbabilityPaperExample(t *testing.T) {
	_, l10 := CollisionProbability(1_000_000, 1024)
	// The paper rounds n(n-1)/2 ≈ 10^12 and N ≈ 10^307 to get 10^-295;
	// the unrounded value is 10^-296.3.  Accept the paper's order of
	// magnitude within its own rounding slack.
	if l10 < -297.5 || l10 > -293.5 {
		t.Errorf("log10 Pr[collision] = %.1f, want ≈ -295..-296 (paper §3.2.2)", l10)
	}
}

func TestCollisionProbabilityDegenerate(t *testing.T) {
	if p, _ := CollisionProbability(0, 1024); p != 0 {
		t.Errorf("n=0: p = %v, want 0", p)
	}
	if p, _ := CollisionProbability(1, 1024); p != 0 {
		t.Errorf("n=1: p = %v, want 0", p)
	}
}

func TestCollisionProbabilityMatchesExactSmallDomain(t *testing.T) {
	// For a domain of size 2^15 (bits=16) and moderate n, the closed-form
	// 1-exp bound must approximate the exact product.
	for _, n := range []uint64{10, 50, 100} {
		approx, _ := CollisionProbability(n, 16)
		exact, err := ExactCollisionProbability(n, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(approx-exact) > 0.01*math.Max(exact, 1e-6)+1e-6 {
			t.Errorf("n=%d: approx %.6g vs exact %.6g", n, approx, exact)
		}
	}
}

func TestExactCollisionProbabilityPigeonhole(t *testing.T) {
	p, err := ExactCollisionProbability(20, 10)
	if err != nil || p != 1 {
		t.Errorf("pigeonhole: p=%v err=%v, want 1, nil", p, err)
	}
	if _, err := ExactCollisionProbability(5, 0); err == nil {
		t.Error("empty domain accepted")
	}
}

// TestHashEmpiricalCollisionRate checks the birthday estimate empirically
// on QR of the 64-bit builtin group: with n = 2^20 the predicted collision
// probability is ~2^40/2^64 ≈ 6e-8, so none should occur in one draw of
// n = 4096 values (prob ≈ 2^24/2^64, utterly negligible).
func TestHashEmpiricalCollisionRate(t *testing.T) {
	g := group.MustBuiltin(group.Bits64)
	o := New(g)
	seen := map[uint64]bool{}
	for i := 0; i < 4096; i++ {
		h := o.HashString(fmt.Sprintf("k%d", i)).Uint64()
		if seen[h] {
			t.Fatalf("collision at i=%d (probability ~1e-13, investigate bias)", i)
		}
		seen[h] = true
	}
}

func TestHashRejectionLandsInGroupAndIsDeterministic(t *testing.T) {
	g := group.TestGroup()
	o := New(g)
	for i := 0; i < 50; i++ {
		v := []byte(fmt.Sprintf("rej-%d", i))
		h1 := o.HashRejection(v)
		if !g.Contains(h1) {
			t.Fatalf("HashRejection escaped the group")
		}
		if h1.Cmp(o.HashRejection(v)) != 0 {
			t.Fatal("HashRejection not deterministic")
		}
	}
	// Independent of the squaring construction.
	if o.Hash([]byte("x")).Cmp(o.HashRejection([]byte("x"))) == 0 {
		t.Error("rejection and squaring hashes coincide (domain separation broken)")
	}
}
