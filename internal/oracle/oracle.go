// Package oracle implements the hash function h : V → DomF of
// Section 3.2.2 of the paper.
//
// The protocols never encrypt attribute values directly: they encrypt
// h(v), where h is modelled in the security proofs as a random oracle
// into the commutative-encryption domain.  This package owns the
// backend-independent half of h — SHA-256 in counter mode (an
// extendable-output construction) expanding the value to the backend's
// uniform-byte budget — and delegates the landing inside the group to
// group.Backend.MapToElement.  For the safe-prime backend that is
// reduce-mod-p, adjust away from 0, and square (squaring maps Z_p*
// exactly two-to-one onto QR(p)); for the Curve25519 backend it is
// Elligator2 hash-to-curve with cofactor clearing.  Either way h(v) is
// statistically close to uniform on the group, which is what Lemma 2's
// use of the random-oracle model requires.
//
// The package also reproduces the collision analysis of Section 3.2.2:
// the closed-form birthday bound Pr[collision] ≈ 1 − exp(−n(n−1)/2N) and
// the sort-based collision detection the paper prescribes running at the
// start of each protocol.
package oracle

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"math/big"
	"sort"

	"minshare/internal/group"
	"minshare/internal/obs"
)

// Oracle hashes application values into a fixed commutative-encryption
// domain.  It is stateless and safe for concurrent use.
type Oracle struct {
	b group.Backend
	// domainSep is mixed into every hash so that distinct protocol
	// deployments (or test fixtures) can use independent oracles over the
	// same group.
	domainSep []byte
	// counters, when non-nil, receives one C_h tick per oracle
	// evaluation (see Observed).
	counters *obs.Counters
}

// New returns an Oracle into b with an empty domain-separation tag.
func New(b group.Backend) *Oracle {
	return NewWithDomain(b, "")
}

// NewWithDomain returns an Oracle into b whose outputs are independent of
// any oracle with a different tag.
func NewWithDomain(b group.Backend, tag string) *Oracle {
	return &Oracle{b: b, domainSep: []byte(tag)}
}

// Backend returns the target domain.
func (o *Oracle) Backend() group.Backend { return o.b }

// Observed returns a copy of the oracle whose evaluations are counted
// into c (one C_h per Hash, one per rejection-sampling attempt in
// HashRejection).  A nil c returns o unchanged.  The copy shares the
// group and domain tag, so outputs are identical to the original's.
func (o *Oracle) Observed(c *obs.Counters) *Oracle {
	if c == nil {
		return o
	}
	cp := *o
	cp.counters = c
	return &cp
}

// Hash maps an arbitrary byte string to a group element of the target
// domain.  Equal inputs map to equal outputs; the distribution over
// random inputs is statistically close to uniform on the group.
//
// The expansion is deliberately backend-independent: SHA-256 in counter
// mode produces HashInputLen uniform bytes (2·ElementLen for QR(p),
// keeping the mod-p reduction bias at most 2^-|p|; 64 bytes for
// Curve25519), and MapToElement lands them in the group.  For the
// safe-prime backend the composition is byte-for-byte the construction
// this package always used, so existing transcripts and golden vectors
// are unchanged.
func (o *Oracle) Hash(v []byte) *big.Int {
	if o.counters != nil {
		o.counters.AddOracleHashes(1)
	}
	outLen := o.b.HashInputLen()
	buf := make([]byte, 0, outLen+sha256.Size)
	var ctr uint32
	for len(buf) < outLen {
		h := sha256.New()
		h.Write(o.domainSep)
		var ctrBytes [4]byte
		binary.BigEndian.PutUint32(ctrBytes[:], ctr)
		h.Write(ctrBytes[:])
		h.Write(v)
		buf = h.Sum(buf)
		ctr++
	}
	return o.b.MapToElement(buf[:outLen])
}

// HashRejection is the alternative hash-to-group construction the
// DESIGN.md ablation compares against: instead of squaring (which maps
// into QR(p) in one step), it re-expands with an incremented counter
// until the candidate is already a quadratic residue — on average two
// Legendre-symbol evaluations per value.  Same random-oracle guarantees,
// measurably slower; the protocols use Hash.
//
// The construction is specific to the safe-prime domain: a uniform
// integer is a quadratic residue with probability ~1/2, so rejection
// terminates quickly, whereas a uniform integer is a valid curve-point
// encoding with negligible probability.  On any non-QR backend
// HashRejection therefore falls back to Hash (the ablation only ever
// runs on QR groups).
func (o *Oracle) HashRejection(v []byte) *big.Int {
	g, ok := o.b.(*group.Group)
	if !ok {
		return o.Hash(v)
	}
	outLen := 2 * g.ElementLen()
	pMinus1 := new(big.Int).Sub(g.P(), big.NewInt(1))
	for attempt := uint32(0); ; attempt++ {
		if o.counters != nil {
			o.counters.AddOracleHashes(1)
		}
		buf := make([]byte, 0, outLen+sha256.Size)
		var ctr uint32
		for len(buf) < outLen {
			h := sha256.New()
			h.Write(o.domainSep)
			h.Write([]byte{'R', 'J'})
			var aBytes [4]byte
			binary.BigEndian.PutUint32(aBytes[:], attempt)
			h.Write(aBytes[:])
			var ctrBytes [4]byte
			binary.BigEndian.PutUint32(ctrBytes[:], ctr)
			h.Write(ctrBytes[:])
			h.Write(v)
			buf = h.Sum(buf)
			ctr++
		}
		x := new(big.Int).SetBytes(buf[:outLen])
		x.Mod(x, pMinus1)
		x.Add(x, big.NewInt(1))
		if g.Contains(x) {
			return x
		}
	}
}

// HashString is Hash on the UTF-8 bytes of s.
func (o *Oracle) HashString(s string) *big.Int { return o.Hash([]byte(s)) }

// HashUint64 is Hash on the big-endian encoding of u; it is the hash used
// for integer keys such as the medical application's person identifiers.
func (o *Oracle) HashUint64(u uint64) *big.Int {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], u)
	return o.Hash(b[:])
}

// HashAll hashes each value of vs in order.
func (o *Oracle) HashAll(vs [][]byte) []*big.Int {
	out := make([]*big.Int, len(vs))
	for i, v := range vs {
		out[i] = o.Hash(v)
	}
	return out
}

// Collision describes two distinct input values with equal hashes.
type Collision struct {
	I, J int // indices into the input slice, I < J
}

// DetectCollisions returns all pairwise hash collisions among vs,
// implementing the check Section 3.2.2 prescribes "at the start of each
// protocol by sorting the hashes".  Distinct indices holding *equal*
// values are not collisions (they are duplicates, which the multiset
// protocols handle separately); only distinct values with equal hashes
// are reported.
func DetectCollisions(o *Oracle, vs [][]byte) []Collision {
	type entry struct {
		hash string
		idx  int
	}
	entries := make([]entry, len(vs))
	for i, v := range vs {
		entries[i] = entry{hash: string(o.Hash(v).Bytes()), idx: i}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].hash != entries[j].hash {
			return entries[i].hash < entries[j].hash
		}
		return entries[i].idx < entries[j].idx
	})
	var out []Collision
	for i := 1; i < len(entries); i++ {
		if entries[i].hash != entries[i-1].hash {
			continue
		}
		a, b := entries[i-1].idx, entries[i].idx
		if string(vs[a]) == string(vs[b]) {
			continue // duplicate value, not a collision
		}
		if a > b {
			a, b = b, a
		}
		out = append(out, Collision{I: a, J: b})
	}
	return out
}

// CollisionProbability returns the birthday bound of Section 3.2.2,
//
//	Pr[collision] ≈ 1 − exp(−n(n−1) / 2N),
//
// for n hashed values in a domain of size N = 2^(bits-1) (half of the
// 2^bits values are quadratic residues, as the paper notes for its
// "1024-bit hash values, half of which are quadratic residues" example).
// The result is returned as a base-10 order of magnitude because the
// probability underflows float64 for realistic parameters (the paper's
// example is 10^-295).
func CollisionProbability(n uint64, bits int) (prob float64, log10 float64) {
	// n(n-1)/2N computed in floats via logarithms:
	// log10(x) = log10(n) + log10(n-1) - log10(2) - (bits-1)*log10(2)
	if n < 2 {
		return 0, math.Inf(-1)
	}
	l10 := math.Log10(float64(n)) + math.Log10(float64(n-1)) -
		float64(bits)*math.Log10(2) // 2N = 2*2^(bits-1) = 2^bits
	// For tiny x, 1 - exp(-x) ≈ x, so the order of magnitude of the
	// probability equals that of x itself.
	if l10 < -15 {
		return math.Pow(10, l10), l10
	}
	x := math.Pow(10, l10)
	p := 1 - math.Exp(-x)
	if p <= 0 {
		return x, l10
	}
	return p, math.Log10(p)
}

// ExactCollisionProbability returns 1 − Π_{i=1}^{n−1} (N−i)/N, the exact
// expression from Section 3.2.2, for small n and N where it is
// computable.  It is used in tests to validate the closed-form bound.
func ExactCollisionProbability(n, domain uint64) (float64, error) {
	if domain == 0 {
		return 0, fmt.Errorf("oracle: empty domain")
	}
	if n > domain {
		return 1, nil // pigeonhole
	}
	prod := 1.0
	for i := uint64(1); i < n; i++ {
		prod *= float64(domain-i) / float64(domain)
	}
	return 1 - prod, nil
}
