package group

import (
	"errors"
	"math/big"
	"math/bits"
)

// Fixed-width Montgomery-form arithmetic for the safe-prime backend's
// hot path.
//
// big.Int.Exp re-derives the Montgomery parameters (notably R² mod p,
// via a full division) and allocates working storage on every call.  A
// protocol session performs thousands of exponentiations modulo the
// SAME p, so this file precomputes everything modulus-dependent once —
// R², -p⁻¹ mod 2^64, R mod p — into a Modulus, and then runs a
// fixed-width CIOS (coarsely integrated operand scanning) multiply and
// a fixed 4-bit-window ladder over plain word arrays.  The ladder
// always scans the full modulus-width exponent, performs the identical
// square/multiply schedule for every exponent, and reads its window
// table with a masked gather, so the operation sequence and memory
// touch pattern do not depend on key bits.
//
// Group.Exp routes through this path for moduli up to montMaxBits;
// above that, math/big's assembly inner loops win despite their
// per-call setup, so the gate keeps the fast path honest (the
// crossover is certified by BenchmarkMontVsBigExp).

// ErrOddModulus reports a modulus unusable for Montgomery arithmetic.
var ErrOddModulus = errors.New("group: montgomery modulus must be odd and positive")

// Modulus holds a modulus p with every reusable Montgomery constant
// precomputed: the amortization unit of the fast exponentiation path.
// A Modulus is immutable and safe for concurrent use.
type Modulus struct {
	w      []uint64 // little-endian words of p
	n0inv  uint64   // -p⁻¹ mod 2^64
	rr     []uint64 // R² mod p, R = 2^(64·len(w))
	oneMon []uint64 // R mod p (1 in Montgomery form)
	bits   int      // p.BitLen()
}

// NewModulus precomputes Montgomery constants for an odd modulus p.
func NewModulus(p *big.Int) (*Modulus, error) {
	if p == nil || p.Sign() <= 0 || p.Bit(0) == 0 {
		return nil, ErrOddModulus
	}
	w := bigToWords(p, (p.BitLen()+63)/64)
	n := len(w)

	// n0inv = -p⁻¹ mod 2^64 by Newton iteration: each step doubles
	// the number of correct low bits, and 6 steps cover 64.
	inv := w[0] // correct to 3 bits (p odd)
	for i := 0; i < 6; i++ {
		inv *= 2 - w[0]*inv
	}

	R := new(big.Int).Lsh(big.NewInt(1), uint(64*n))
	rr := new(big.Int).Mul(R, R)
	rr.Mod(rr, p)
	oneMon := new(big.Int).Mod(R, p)

	return &Modulus{
		w:      w,
		n0inv:  -inv,
		rr:     bigToWords(rr, n),
		oneMon: bigToWords(oneMon, n),
		bits:   p.BitLen(),
	}, nil
}

// Bits returns the bit length of the modulus.
func (m *Modulus) Bits() int { return m.bits }

// Words returns the fixed word width of the modulus (and of every Nat
// attached to it).
func (m *Modulus) Words() int { return len(m.w) }

// One returns 1 in Montgomery form (R mod p) without allocating word
// storage: the returned Nat aliases the Modulus's precomputed constant.
// Treat it as read-only — mutating it corrupts every later
// exponentiation under this Modulus.  The psilint bigintalias analyzer
// enforces this, exactly as it does for CachedSet accessor results.
func (m *Modulus) One() *Nat { return &Nat{w: m.oneMon} }

// bigToWords converts v to exactly n little-endian 64-bit words.
func bigToWords(v *big.Int, n int) []uint64 {
	buf := v.FillBytes(make([]byte, n*8))
	w := make([]uint64, n)
	for i := 0; i < n; i++ {
		var x uint64
		for j := 0; j < 8; j++ {
			x = x<<8 | uint64(buf[(n-1-i)*8+j])
		}
		w[i] = x
	}
	return w
}

// wordsToBig converts little-endian words to a big.Int.
func wordsToBig(w []uint64) *big.Int {
	buf := make([]byte, len(w)*8)
	for i, x := range w {
		for j := 0; j < 8; j++ {
			buf[(len(w)-1-i)*8+7-j] = byte(x >> (8 * j))
		}
	}
	return new(big.Int).SetBytes(buf)
}

// Nat is a fixed-width natural number bound to a Modulus, in
// Montgomery form.  Its mutating API reuses storage across the
// thousands of same-modulus operations of a session; like big.Int (and
// unlike fe/Point in the EC backend) a Nat is NOT immutable, so the
// psilint bigintalias analyzer applies the same no-shared-mutation
// rules to Nats that it applies to cached big.Int elements.
type Nat struct {
	w []uint64
}

// NewNat returns a zero Nat sized for m.
func NewNat(m *Modulus) *Nat { return &Nat{w: make([]uint64, m.Words())} }

// Set copies x into n and returns n.
func (n *Nat) Set(x *Nat) *Nat {
	copy(n.w, x.w)
	return n
}

// SetBig loads v (which must lie in [0, p)) into n in Montgomery
// form and returns n.
func (n *Nat) SetBig(m *Modulus, v *big.Int) *Nat {
	raw := bigToWords(v, m.Words())
	m.montMul(n.w, raw, m.rr) // raw·R² / R = raw·R
	return n
}

// Big leaves Montgomery form and returns the standard representative
// in [0, p).
func (n *Nat) Big(m *Modulus) *big.Int {
	out := make([]uint64, m.Words())
	one := make([]uint64, m.Words())
	one[0] = 1
	m.montMul(out, n.w, one) // n/R
	return wordsToBig(out)
}

// MontMul sets n = a·b / R mod p (the Montgomery product) and
// returns n.  All three may alias.
func (n *Nat) MontMul(m *Modulus, a, b *Nat) *Nat {
	out := make([]uint64, m.Words())
	m.montMul(out, a.w, b.w)
	copy(n.w, out)
	return n
}

// montMul computes out = a·b/R mod p by CIOS.  out must not alias a
// or b.  The result is fully reduced to [0, p).
func (m *Modulus) montMul(out, a, b []uint64) {
	m.montMulS(out, a, b, make([]uint64, len(m.w)+2))
}

// montMulS is montMul with caller-provided scratch (len(m.w)+2 words),
// so the exponentiation ladder performs no allocation per product.
// out must not alias a, b, or t.
func (m *Modulus) montMulS(out, a, b, t []uint64) {
	if len(m.w) == 4 && len(out) == 4 && len(a) == 4 && len(b) == 4 {
		montMul4((*[4]uint64)(out), (*[4]uint64)(a), (*[4]uint64)(b),
			(*[4]uint64)(m.w), m.n0inv)
		return
	}
	n := len(m.w)
	// t holds the running partial product across word iterations.
	for j := range t {
		t[j] = 0
	}
	for i := 0; i < n; i++ {
		// t += a[i]·b
		var c uint64
		for j := 0; j < n; j++ {
			hi, lo := bits.Mul64(a[i], b[j])
			lo, c1 := bits.Add64(lo, t[j], 0)
			lo, c2 := bits.Add64(lo, c, 0)
			t[j] = lo
			c = hi + c1 + c2
		}
		tn, c3 := bits.Add64(t[n], c, 0)
		t[n] = tn
		t[n+1] = c3

		// q chosen so t + q·p ≡ 0 mod 2^64; then shift one word.
		q := t[0] * m.n0inv
		hi, lo := bits.Mul64(q, m.w[0])
		_, c0 := bits.Add64(lo, t[0], 0)
		c = hi + c0
		for j := 1; j < n; j++ {
			hi, lo := bits.Mul64(q, m.w[j])
			lo, c1 := bits.Add64(lo, t[j], 0)
			lo, c2 := bits.Add64(lo, c, 0)
			t[j-1] = lo
			c = hi + c1 + c2
		}
		tn, c3 = bits.Add64(t[n], c, 0)
		t[n-1] = tn
		t[n] = t[n+1] + c3
		t[n+1] = 0
	}
	// t ∈ [0, 2p): constant-time conditional subtraction of p, with
	// the subtracted candidate built directly in out and blended back
	// against t.
	var borrow uint64
	for j := 0; j < n; j++ {
		out[j], borrow = bits.Sub64(t[j], m.w[j], borrow)
	}
	// Keep the subtracted value iff t ≥ p: either the top word t[n]
	// is set, or the n-word subtraction did not borrow.
	useSub := t[n] | (1 - borrow)
	mask := -(useSub & 1)
	for j := 0; j < n; j++ {
		out[j] = out[j]&mask | t[j]&^mask
	}
}

// Exp returns x^e mod p via the fixed-window Montgomery ladder.  x
// must lie in [0, p) and e must be non-negative.  For repeated calls
// with the same modulus this amortizes all per-modulus setup that
// big.Int.Exp re-derives every time.
func (m *Modulus) Exp(x, e *big.Int) *big.Int {
	n := len(m.w)
	if n == 4 && e.BitLen() <= 256 {
		return m.exp4(x, e)
	}

	// One arena for everything the ladder touches: CIOS scratch, the
	// 16-row window table, the accumulator and its double buffer, and
	// the gather target.  A single allocation per Exp call; none per
	// Montgomery product.
	arena := make([]uint64, (n+2)+16*n+3*n)
	scratch := arena[:n+2]
	tableFlat := arena[n+2 : n+2+16*n]
	acc := arena[n+2+16*n : n+2+17*n]
	tmp := arena[n+2+17*n : n+2+18*n]
	sel := arena[n+2+18*n : n+2+19*n]

	// Window table: table row i holds x^i in Montgomery form.
	copy(tableFlat[:n], m.oneMon)
	xm := tableFlat[n : 2*n]
	m.montMulS(xm, bigToWords(x, n), m.rr, scratch)
	for i := 2; i < 16; i++ {
		m.montMulS(tableFlat[i*n:(i+1)*n], tableFlat[(i-1)*n:i*n], xm, scratch)
	}

	// Exponent padded to the fixed modulus width so the ladder's
	// schedule is independent of the exponent's actual length.
	eb := e.FillBytes(make([]byte, n*8))

	copy(acc, m.oneMon)
	for _, by := range eb {
		for _, nib := range [2]uint64{uint64(by >> 4), uint64(by & 15)} {
			for s := 0; s < 4; s++ {
				m.montMulS(tmp, acc, acc, scratch)
				acc, tmp = tmp, acc
			}
			// Masked gather: read every table row, keep the match, so
			// the memory touch pattern is independent of key nibbles.
			for j := 0; j < n; j++ {
				sel[j] = 0
			}
			for i := 0; i < 16; i++ {
				// mask = all-ones iff i == nib, branch-free.
				d := uint64(i) ^ nib
				mask := -(1 ^ ((d | -d) >> 63))
				row := tableFlat[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					sel[j] |= row[j] & mask
				}
			}
			m.montMulS(tmp, acc, sel, scratch)
			acc, tmp = tmp, acc
		}
	}

	// Leave Montgomery form: multiply by plain 1 (reuse sel).
	for j := 1; j < n; j++ {
		sel[j] = 0
	}
	sel[0] = 1
	m.montMulS(tmp, acc, sel, scratch)
	return wordsToBig(tmp)
}
