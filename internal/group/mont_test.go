package group

import (
	"math/big"
	"math/rand"
	"testing"
)

// TestMontExpDifferential cross-checks the fixed-width Montgomery
// ladder against big.Int.Exp over random bases and exponents for every
// builtin modulus in the Montgomery range, plus edge exponents.
func TestMontExpDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, size := range BuiltinSizes() {
		if int(size) > montMaxBits {
			continue
		}
		g := MustBuiltin(size)
		m, err := NewModulus(g.P())
		if err != nil {
			t.Fatalf("NewModulus(%d bits): %v", size, err)
		}
		for i := 0; i < 40; i++ {
			x := new(big.Int).Rand(rng, g.P())
			e := new(big.Int).Rand(rng, g.P())
			got := m.Exp(x, e)
			want := new(big.Int).Exp(x, e, g.P())
			if got.Cmp(want) != 0 {
				t.Fatalf("%d bits: mont exp mismatch at i=%d:\n got %x\nwant %x", size, i, got, want)
			}
		}
		// Edge exponents: 0, 1, 2, q, p-1, and a full-width exponent.
		for _, e := range []*big.Int{
			big.NewInt(0), big.NewInt(1), big.NewInt(2),
			g.Q(), new(big.Int).Sub(g.P(), big.NewInt(1)),
			new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(64*m.Words())), big.NewInt(1)),
		} {
			x := new(big.Int).Rand(rng, g.P())
			got := m.Exp(x, e)
			want := new(big.Int).Exp(x, e, g.P())
			if got.Cmp(want) != 0 {
				t.Fatalf("%d bits: mont exp mismatch at edge e=%v", size, e)
			}
		}
		// Edge bases: 0, 1, p-1.
		for _, x := range []*big.Int{
			big.NewInt(0), big.NewInt(1), new(big.Int).Sub(g.P(), big.NewInt(1)),
		} {
			e := new(big.Int).Rand(rng, g.Q())
			got := m.Exp(x, e)
			want := new(big.Int).Exp(x, e, g.P())
			if got.Cmp(want) != 0 {
				t.Fatalf("%d bits: mont exp mismatch at edge x=%v", size, x)
			}
		}
	}
}

// TestMontNatRoundTrip exercises the Nat mutating API: SetBig/Big
// round-trips and MontMul agrees with big.Int multiplication.
func TestMontNatRoundTrip(t *testing.T) {
	g := TestGroup()
	m, err := NewModulus(g.P())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		a := new(big.Int).Rand(rng, g.P())
		b := new(big.Int).Rand(rng, g.P())

		na := NewNat(m).SetBig(m, a)
		if got := na.Big(m); got.Cmp(a) != 0 {
			t.Fatalf("SetBig/Big round-trip broke at i=%d", i)
		}

		nb := NewNat(m).SetBig(m, b)
		prod := NewNat(m).MontMul(m, na, nb)
		want := new(big.Int).Mul(a, b)
		want.Mod(want, g.P())
		if got := prod.Big(m); got.Cmp(want) != 0 {
			t.Fatalf("MontMul mismatch at i=%d", i)
		}

		// Aliased receiver: na = na * nb in place.
		na.MontMul(m, na, nb)
		if got := na.Big(m); got.Cmp(want) != 0 {
			t.Fatalf("aliased MontMul mismatch at i=%d", i)
		}

		// Set copies.
		nc := NewNat(m).Set(na)
		if got := nc.Big(m); got.Cmp(want) != 0 {
			t.Fatalf("Set copy mismatch at i=%d", i)
		}
	}
}

// TestNewModulusRejections: even and non-positive moduli are refused.
func TestNewModulusRejections(t *testing.T) {
	for _, p := range []*big.Int{nil, big.NewInt(0), big.NewInt(-7), big.NewInt(10)} {
		if _, err := NewModulus(p); err == nil {
			t.Fatalf("NewModulus(%v) unexpectedly succeeded", p)
		}
	}
}

// TestGroupExpUsesMontWithinGate: Group.Exp output is identical with
// and without the Montgomery gate across the boundary sizes.
func TestGroupExpUsesMontWithinGate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, size := range []Size{Bits256, Bits512, Bits1024} {
		g := MustBuiltin(size)
		for i := 0; i < 10; i++ {
			x, err := g.RandomElement(nil)
			if err != nil {
				t.Fatal(err)
			}
			e := new(big.Int).Rand(rng, g.Q())
			got := g.Exp(x, e)
			want := new(big.Int).Exp(x, e, g.P())
			if got.Cmp(want) != 0 {
				t.Fatalf("%d bits: Group.Exp mismatch", size)
			}
		}
	}
}

// BenchmarkMontVsBigExp measures the Montgomery ladder against
// big.Int.Exp at each builtin width, certifying the montMaxBits gate:
// the fixed-width path must win below the gate (the reported % is
// published in BENCH_PR7.json) and the gate excludes widths where
// math/big's assembly kernels win.
func BenchmarkMontVsBigExp(b *testing.B) {
	for _, size := range []Size{Bits256, Bits512, Bits768, Bits1024} {
		g := MustBuiltin(size)
		m, err := NewModulus(g.P())
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(size)))
		x := new(big.Int).Rand(rng, g.P())
		e := new(big.Int).Rand(rng, g.Q())
		b.Run(g.Name()+"/mont", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Exp(x, e)
			}
		})
		b.Run(g.Name()+"/bigint", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				new(big.Int).Exp(x, e, g.P())
			}
		})
	}
}
