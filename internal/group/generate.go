package group

import (
	"context"
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

// GenerateSafePrime produces a fresh safe prime of the requested bit
// length using rejection sampling: draw a (bits-1)-bit prime q and test
// whether p = 2q + 1 is prime.  The density of safe primes makes this
// expensive for large sizes (minutes for 2048 bits on one core); use the
// pre-generated Builtin groups unless fresh parameters are required.
//
// The context allows cancellation of long-running generation.  The
// randomness source r defaults to crypto/rand.Reader when nil.
func GenerateSafePrime(ctx context.Context, bits int, r io.Reader) (*big.Int, error) {
	if bits < 16 {
		return nil, fmt.Errorf("group: safe prime size %d too small (min 16 bits)", bits)
	}
	if r == nil {
		r = rand.Reader
	}
	for {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("group: safe prime generation cancelled: %w", ctx.Err())
		default:
		}
		q, err := rand.Prime(r, bits-1)
		if err != nil {
			return nil, fmt.Errorf("group: generating candidate prime: %w", err)
		}
		p := new(big.Int).Lsh(q, 1)
		p.Add(p, one)
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
}

// Generate produces a fresh Group with a newly generated safe prime of
// the requested bit length.  See GenerateSafePrime for cost caveats.
func Generate(ctx context.Context, bits int, r io.Reader) (*Group, error) {
	p, err := GenerateSafePrime(ctx, bits, r)
	if err != nil {
		return nil, err
	}
	return New(p)
}
