package group

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"
	"strconv"
)

// This file defines the pluggable commutative-encryption domain: the
// Backend interface every protocol layer programs against, the opaque
// Scalar key type, and the wire-level backend registry.
//
// The paper's Section 6 cost model shows that C_e — one application of
// the commutative power function f_e — dominates every protocol cost.
// Example 1 instantiates f_e(x) = x^e mod p over QR(p), but nothing in
// Definition 2 requires that particular group: any cyclic group of
// prime order in which DDH is hard works, and elliptic-curve groups
// deliver the same security guarantee at a fraction of the per-
// operation cost (f_e(x) = e·H(x), a scalar multiplication over a
// hashed-to-curve point).  Backend abstracts exactly the operations the
// protocols need so the domain can be swapped without touching the
// protocol, wire, caching or observability layers.
//
// Canonical representation.  Every group element crosses package
// boundaries as a *big.Int holding the element's fixed-width canonical
// wire encoding interpreted as a big-endian integer.  For QR(p) that is
// the residue itself; for an elliptic-curve backend it is the 32-byte
// compressed-point encoding.  This keeps the wire codec, the sorted
// transcript order (numeric order == lexicographic order of the fixed-
// width encoding), the match-phase maps, and the S27 encrypted-set
// cache entirely backend-agnostic.

// ErrBadScalar reports a scalar outside the backend's key space.
var ErrBadScalar = errors.New("group: scalar outside key space")

// Code identifies a backend in the session handshake.  The safe-prime
// backend is code 0 on purpose: pre-backend headers carry no backend
// field, and decoding the absent field as zero makes a legacy peer and
// a current safe-prime peer agree byte-for-byte (see wire.Header).
type Code uint8

// Registered backend codes.
const (
	// CodeQR is the Example 1 domain: QR(p) under a safe prime, with
	// f_e(x) = x^e mod p.  The wire default.
	CodeQR Code = 0
	// CodeEC25519 is the Curve25519-based domain: the prime-order
	// subgroup of edwards25519, with f_e(x) = e·x over hashed-to-curve
	// points.
	CodeEC25519 Code = 1
)

// String implements fmt.Stringer.
func (c Code) String() string {
	switch c {
	case CodeQR:
		return "qr"
	case CodeEC25519:
		return "ec25519"
	default:
		return fmt.Sprintf("backend(%d)", uint8(c))
	}
}

// Scalar is a secret commutative-encryption exponent (the paper's e ∈
// KeyF) in whichever key space the originating backend uses: [1, q-1]
// for QR(p), [1, ℓ-1] for the Curve25519 subgroup.  Scalars are key
// material — the psilint secretlog analyzer rejects any path from a
// Scalar to a log line, error string, or trace annotation — and are
// immutable after creation; they must never be shared across backends.
type Scalar struct {
	v *big.Int
}

// newScalar wraps a value the backend has already validated.
func newScalar(v *big.Int) *Scalar { return &Scalar{v: v} }

// Big returns a copy of the raw scalar value.  It exists for key
// persistence in tools; protocol code never needs it (and psilint
// treats its result as secret-bearing, like Key.Exponent).
func (s *Scalar) Big() *big.Int { return new(big.Int).Set(s.v) }

// value returns the scalar's backing integer for backend-internal use.
// Callers must not mutate the result.
func (s *Scalar) value() *big.Int { return s.v }

// Backend is a commutative-encryption domain in the sense of the
// paper's Definition 2: a prime-order group with a random-oracle hash
// into it, a key space of invertible scalars, and the family
// f_e = Apply(e, ·) of commuting bijections.  Implementations must be
// safe for concurrent use.
type Backend interface {
	// Name is the backend's registry name ("qr1024", "ec25519", …).
	Name() string
	// Code is the backend's wire-level identifier for the handshake.
	Code() Code
	// Bits is the codeword width k of the paper's Section 6.1
	// communication analysis: the number of bits one transmitted
	// element occupies.
	Bits() int
	// ElementLen is the fixed byte width of one encoded element,
	// ceil(Bits/8).
	ElementLen() int
	// ParamDigest identifies the concrete group parameters (modulus or
	// curve) for the handshake's group check.
	ParamDigest() [32]byte
	// Contains reports whether x is a canonical encoding of a group
	// element usable with Apply.
	Contains(x *big.Int) bool
	// HashInputLen is the number of uniform bytes MapToElement consumes
	// per evaluation.  Package oracle produces them with a domain-
	// separated XOF expansion.
	HashInputLen() int
	// MapToElement maps HashInputLen uniform bytes to a group element
	// that is statistically close to uniform — the backend half of the
	// Section 3.2.2 random oracle h.
	MapToElement(uniform []byte) *big.Int
	// RandomScalar draws a uniform secret scalar from the key space,
	// reading randomness from r (crypto/rand when nil).
	RandomScalar(r io.Reader) (*Scalar, error)
	// ScalarFromBig validates an explicit exponent and wraps it; used by
	// deterministic tests and key persistence.
	ScalarFromBig(e *big.Int) (*Scalar, error)
	// InvertScalar returns e' with Apply(e', Apply(e, x)) = x — Property
	// 3 of Definition 2.
	InvertScalar(e *Scalar) (*Scalar, error)
	// Apply computes f_e(x): a modular exponentiation for QR(p), a
	// scalar multiplication for an elliptic-curve backend.  Its cost is
	// the paper's C_e.  x must satisfy Contains.
	Apply(e *Scalar, x *big.Int) (*big.Int, error)
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

// Backends returns the named backends available to the CLIs'
// -group flags: every builtin safe-prime size as "qr<bits>" plus
// "ec25519".  The default protocol backend is "qr1024" (the paper's
// parameters); "ec25519" offers ≥ the same security at a fraction of
// the C_e cost.
func Backends() []string {
	names := []string{"ec25519"}
	for _, s := range BuiltinSizes() {
		names = append(names, fmt.Sprintf("qr%d", int(s)))
	}
	sort.Strings(names)
	return names
}

// ByName resolves a backend registry name: "ec25519", or "qr<bits>"
// for any builtin safe-prime size ("qr1024", "qr256", …).  The bare
// name "qr" selects the default 1024-bit group.
func ByName(name string) (Backend, error) {
	switch name {
	case "ec25519":
		return EC25519(), nil
	case "qr", "":
		return Default(), nil
	}
	var bits int
	if _, err := fmt.Sscanf(name, "qr%d", &bits); err == nil {
		g, err := Builtin(Size(bits))
		if err != nil {
			return nil, fmt.Errorf("group: backend %q: %w", name, err)
		}
		return g, nil
	}
	return nil, fmt.Errorf("group: unknown backend %q (have %v)", name, Backends())
}

// ByFlag resolves a CLI -group flag value: a backend registry name as
// ByName accepts, or — for compatibility with the flag's earlier
// numeric form — a bare bit count ("1024") selecting the builtin
// safe-prime group of that size.
func ByFlag(v string) (Backend, error) {
	if _, err := strconv.Atoi(v); err == nil {
		return ByName("qr" + v)
	}
	return ByName(v)
}
