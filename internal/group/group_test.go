package group

import (
	"context"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuiltinGroupsValidate(t *testing.T) {
	for _, size := range BuiltinSizes() {
		size := size
		t.Run(size.label(), func(t *testing.T) {
			g, err := Builtin(size)
			if err != nil {
				t.Fatalf("Builtin(%d): %v", size, err)
			}
			if g.Bits() != int(size) {
				t.Errorf("Bits() = %d, want %d", g.Bits(), size)
			}
			p := g.P()
			q := g.Q()
			// p = 2q + 1
			want := new(big.Int).Lsh(q, 1)
			want.Add(want, big.NewInt(1))
			if p.Cmp(want) != 0 {
				t.Errorf("p != 2q+1")
			}
			// p ≡ 3 (mod 4)
			if new(big.Int).Mod(p, big.NewInt(4)).Int64() != 3 {
				t.Errorf("p mod 4 != 3")
			}
		})
	}
}

func (s Size) label() string {
	return big.NewInt(int64(s)).String() + "bit"
}

func TestNewRejectsNonSafePrimes(t *testing.T) {
	cases := []struct {
		name string
		p    *big.Int
	}{
		{"nil", nil},
		{"zero", big.NewInt(0)},
		{"negative", big.NewInt(-7)},
		{"even", big.NewInt(100)},
		{"prime but not safe (13)", big.NewInt(13)}, // (13-1)/2 = 6 composite
		{"composite (15)", big.NewInt(15)},
		{"1 mod 4 prime (17)", big.NewInt(17)},
	}
	for _, tc := range cases {
		if _, err := New(tc.p); err == nil {
			t.Errorf("New(%s) accepted %v, want error", tc.name, tc.p)
		}
	}
}

func TestNewAcceptsSmallSafePrimes(t *testing.T) {
	// 7 = 2*3+1, 11 = 2*5+1, 23 = 2*11+1, 47, 59, 83, 107, 167, 179
	for _, p := range []int64{7, 11, 23, 47, 59, 83, 107, 167, 179} {
		if _, err := New(big.NewInt(p)); err != nil {
			t.Errorf("New(%d): %v", p, err)
		}
	}
}

func TestNewFromHexInvalid(t *testing.T) {
	if _, err := NewFromHex("not hex"); err == nil {
		t.Error("NewFromHex accepted garbage")
	}
}

func TestContains(t *testing.T) {
	g := MustNew(big.NewInt(23)) // QR(23) = {1,2,3,4,6,8,9,12,13,16,18}
	residues := map[int64]bool{1: true, 2: true, 3: true, 4: true, 6: true,
		8: true, 9: true, 12: true, 13: true, 16: true, 18: true}
	for x := int64(-1); x < 25; x++ {
		got := g.Contains(big.NewInt(x))
		want := residues[x]
		if got != want {
			t.Errorf("Contains(%d) = %v, want %v", x, got, want)
		}
	}
	if g.Contains(nil) {
		t.Error("Contains(nil) = true")
	}
}

func TestGroupClosureExhaustive(t *testing.T) {
	// On QR(23), multiplication and exponentiation stay in the group.
	g := MustNew(big.NewInt(23))
	var elems []*big.Int
	for x := int64(1); x < 23; x++ {
		if v := big.NewInt(x); g.Contains(v) {
			elems = append(elems, v)
		}
	}
	if len(elems) != 11 {
		t.Fatalf("|QR(23)| = %d, want 11", len(elems))
	}
	for _, a := range elems {
		for _, b := range elems {
			if p := g.Mul(a, b); !g.Contains(p) {
				t.Errorf("Mul(%v,%v) = %v not in group", a, b, p)
			}
		}
		if inv := g.Inv(a); !g.Contains(inv) || g.Mul(a, inv).Cmp(big.NewInt(1)) != 0 {
			t.Errorf("Inv(%v) wrong", a)
		}
		for e := int64(1); e < 11; e++ {
			if p := g.Exp(a, big.NewInt(e)); !g.Contains(p) {
				t.Errorf("Exp(%v,%d) not in group", a, e)
			}
		}
	}
}

func TestExpCommutesProperty(t *testing.T) {
	g := TestGroup()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, err := g.RandomElement(rng)
		if err != nil {
			return false
		}
		d, _ := g.RandomExponent(rng)
		e, _ := g.RandomExponent(rng)
		lhs := g.Exp(g.Exp(x, d), e)
		rhs := g.Exp(g.Exp(x, e), d)
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestInvExponentInvertsExp(t *testing.T) {
	g := TestGroup()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		x, _ := g.RandomElement(rng)
		e, _ := g.RandomExponent(rng)
		eInv, err := g.InvExponent(e)
		if err != nil {
			t.Fatal(err)
		}
		back := g.Exp(g.Exp(x, e), eInv)
		if back.Cmp(x) != 0 {
			t.Fatalf("x^(e*e^-1) != x")
		}
	}
}

func TestInvExponentRejectsZero(t *testing.T) {
	g := TestGroup()
	if _, err := g.InvExponent(big.NewInt(0)); err == nil {
		t.Error("InvExponent(0) succeeded")
	}
	if _, err := g.InvExponent(g.Q()); err == nil {
		t.Error("InvExponent(q) succeeded")
	}
}

func TestRandomElementInGroup(t *testing.T) {
	g := TestGroup()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		x, err := g.RandomElement(rng)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Contains(x) {
			t.Fatalf("RandomElement returned non-member %v", x)
		}
	}
}

func TestRandomExponentRange(t *testing.T) {
	g := TestGroup()
	rng := rand.New(rand.NewSource(3))
	q := g.Q()
	for i := 0; i < 50; i++ {
		e, err := g.RandomExponent(rng)
		if err != nil {
			t.Fatal(err)
		}
		if e.Sign() <= 0 || e.Cmp(q) >= 0 {
			t.Fatalf("RandomExponent %v outside [1, q-1]", e)
		}
	}
}

func TestEncodeDecodeMessageRoundTrip(t *testing.T) {
	g := MustNew(big.NewInt(23)) // q = 11
	for m := int64(1); m <= 11; m++ {
		enc, err := g.EncodeMessage(big.NewInt(m))
		if err != nil {
			t.Fatalf("EncodeMessage(%d): %v", m, err)
		}
		if !g.Contains(enc) {
			t.Fatalf("EncodeMessage(%d) = %v not a residue", m, enc)
		}
		dec, err := g.DecodeMessage(enc)
		if err != nil {
			t.Fatalf("DecodeMessage: %v", err)
		}
		if dec.Int64() != m {
			t.Fatalf("round trip %d -> %v -> %v", m, enc, dec)
		}
	}
}

func TestEncodeMessageRange(t *testing.T) {
	g := MustNew(big.NewInt(23))
	for _, m := range []int64{0, -1, 12, 23, 100} {
		if _, err := g.EncodeMessage(big.NewInt(m)); err == nil {
			t.Errorf("EncodeMessage(%d) accepted out-of-range message", m)
		}
	}
	if _, err := g.EncodeMessage(nil); err == nil {
		t.Error("EncodeMessage(nil) accepted")
	}
}

func TestDecodeMessageRejectsNonMembers(t *testing.T) {
	g := MustNew(big.NewInt(23))
	if _, err := g.DecodeMessage(big.NewInt(5)); err == nil { // 5 is a non-residue mod 23
		t.Error("DecodeMessage accepted non-residue")
	}
}

func TestEncodeDecodeMessagePropertyBigGroup(t *testing.T) {
	g := TestGroup()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := new(big.Int).Rand(rng, g.Q())
		if m.Sign() == 0 {
			m.SetInt64(1)
		}
		enc, err := g.EncodeMessage(m)
		if err != nil {
			return false
		}
		dec, err := g.DecodeMessage(enc)
		return err == nil && dec.Cmp(m) == 0 && g.Contains(enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorGeneratesGroup(t *testing.T) {
	g := MustNew(big.NewInt(23))
	gen := g.Generator()
	seen := map[int64]bool{}
	x := big.NewInt(1)
	for i := 0; i < 11; i++ {
		x = g.Mul(x, gen)
		seen[x.Int64()] = true
	}
	if len(seen) != 11 {
		t.Errorf("generator 4 produced %d distinct elements of QR(23), want 11", len(seen))
	}
}

func TestGenerateSmallSafePrime(t *testing.T) {
	g, err := Generate(context.Background(), 64, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if g.Bits() != 64 {
		t.Errorf("generated %d-bit group, want 64", g.Bits())
	}
}

func TestGenerateCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateSafePrime(ctx, 512, nil); err == nil {
		t.Error("GenerateSafePrime ignored cancelled context")
	}
}

func TestGenerateTooSmall(t *testing.T) {
	if _, err := GenerateSafePrime(context.Background(), 8, nil); err == nil {
		t.Error("accepted 8-bit request")
	}
}

func TestEqualAndString(t *testing.T) {
	a := TestGroup()
	b := MustBuiltin(Bits256)
	c := MustBuiltin(Bits512)
	if !a.Equal(b) {
		t.Error("same builtin groups not Equal")
	}
	if a.Equal(c) {
		t.Error("different groups Equal")
	}
	if a.Equal(nil) {
		t.Error("Equal(nil) = true")
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

func TestElementLen(t *testing.T) {
	if got := TestGroup().ElementLen(); got != 32 {
		t.Errorf("ElementLen() = %d, want 32", got)
	}
	if got := MustNew(big.NewInt(23)).ElementLen(); got != 1 {
		t.Errorf("ElementLen() = %d, want 1", got)
	}
}

func TestBuiltinUnknownSize(t *testing.T) {
	if _, err := Builtin(Size(999)); err == nil {
		t.Error("Builtin(999) succeeded")
	}
}
