package group

import (
	"math/big"
	"math/bits"
)

// montMul4 is the CIOS Montgomery product fully unrolled for 4-word
// (224–256-bit) moduli, the width class where the fixed-width path
// beats math/big.  The entire partial product lives in registers
// (t0..t5), so the inner kernel is pure Mul64/Add64 straight-line code
// with no loads, bounds checks, or loop overhead.  out may alias a or
// b (all inputs are read before out is written).
func montMul4(out, a, b, p *[4]uint64, n0inv uint64) {
	var t0, t1, t2, t3, t4, t5 uint64
	for i := 0; i < 4; i++ {
		ai := a[i]

		// t += ai·b
		hi, lo := bits.Mul64(ai, b[0])
		var cc, cc2 uint64
		t0, cc = bits.Add64(t0, lo, 0)
		c := hi + cc
		hi, lo = bits.Mul64(ai, b[1])
		lo, cc = bits.Add64(lo, c, 0)
		t1, cc2 = bits.Add64(t1, lo, 0)
		c = hi + cc + cc2
		hi, lo = bits.Mul64(ai, b[2])
		lo, cc = bits.Add64(lo, c, 0)
		t2, cc2 = bits.Add64(t2, lo, 0)
		c = hi + cc + cc2
		hi, lo = bits.Mul64(ai, b[3])
		lo, cc = bits.Add64(lo, c, 0)
		t3, cc2 = bits.Add64(t3, lo, 0)
		c = hi + cc + cc2
		t4, cc = bits.Add64(t4, c, 0)
		t5 += cc

		// t = (t + q·p) / 2^64 with q killing the low word.
		q := t0 * n0inv
		hi, lo = bits.Mul64(q, p[0])
		_, cc = bits.Add64(t0, lo, 0)
		c = hi + cc
		hi, lo = bits.Mul64(q, p[1])
		lo, cc = bits.Add64(lo, c, 0)
		nt0, cc2 := bits.Add64(t1, lo, 0)
		c = hi + cc + cc2
		hi, lo = bits.Mul64(q, p[2])
		lo, cc = bits.Add64(lo, c, 0)
		nt1, cc2 := bits.Add64(t2, lo, 0)
		c = hi + cc + cc2
		hi, lo = bits.Mul64(q, p[3])
		lo, cc = bits.Add64(lo, c, 0)
		nt2, cc2 := bits.Add64(t3, lo, 0)
		c = hi + cc + cc2
		nt3, cc := bits.Add64(t4, c, 0)
		t4 = t5 + cc
		t5 = 0
		t0, t1, t2, t3 = nt0, nt1, nt2, nt3
	}

	// t ∈ [0, 2p): constant-time conditional subtraction.
	s0, borrow := bits.Sub64(t0, p[0], 0)
	s1, borrow := bits.Sub64(t1, p[1], borrow)
	s2, borrow := bits.Sub64(t2, p[2], borrow)
	s3, borrow := bits.Sub64(t3, p[3], borrow)
	useSub := t4 | (1 - borrow)
	mask := -(useSub & 1)
	out[0] = s0&mask | t0&^mask
	out[1] = s1&mask | t1&^mask
	out[2] = s2&mask | t2&^mask
	out[3] = s3&mask | t3&^mask
}

// exp4 is Modulus.Exp specialized to 4-word moduli: the window table
// and accumulator are fixed-size stack arrays, every product is the
// unrolled montMul4 kernel, and the constant-time table gather is
// unrolled over registers.
func (m *Modulus) exp4(x, e *big.Int) *big.Int {
	p := (*[4]uint64)(m.w)
	n0inv := m.n0inv

	var table [16][4]uint64
	copy(table[0][:], m.oneMon)
	var xw [4]uint64
	copy(xw[:], bigToWords(x, 4))
	var rr [4]uint64
	copy(rr[:], m.rr)
	montMul4(&table[1], &xw, &rr, p, n0inv)
	for i := 2; i < 16; i++ {
		montMul4(&table[i], &table[i-1], &table[1], p, n0inv)
	}

	var eb [32]byte
	e.FillBytes(eb[:])

	acc := table[0] // 1 in Montgomery form
	for _, by := range eb {
		for _, nib := range [2]uint64{uint64(by >> 4), uint64(by & 15)} {
			montMul4(&acc, &acc, &acc, p, n0inv)
			montMul4(&acc, &acc, &acc, p, n0inv)
			montMul4(&acc, &acc, &acc, p, n0inv)
			montMul4(&acc, &acc, &acc, p, n0inv)
			var s [4]uint64
			for i := 0; i < 16; i++ {
				// mask = all-ones iff i == nib, branch-free.
				d := uint64(i) ^ nib
				mask := -(1 ^ ((d | -d) >> 63))
				s[0] |= table[i][0] & mask
				s[1] |= table[i][1] & mask
				s[2] |= table[i][2] & mask
				s[3] |= table[i][3] & mask
			}
			montMul4(&acc, &acc, &s, p, n0inv)
		}
	}

	one := [4]uint64{1}
	montMul4(&acc, &acc, &one, p, n0inv)
	return wordsToBig(acc[:])
}
