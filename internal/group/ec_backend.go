package group

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"
	"sync"

	"minshare/internal/ec25519"
)

// ecParamID is the canonical parameter string hashed into the EC
// backend's ParamDigest.  Bump the trailing version if the encoding,
// the hash-to-curve map, or the subgroup policy ever changes — peers
// must not silently interoperate across such a change.
const ecParamID = "minshare/ec25519: edwards25519 prime-order subgroup, elligator2 map, cofactor-cleared, compressed-y wire encoding, v1"

// ECGroup is the Curve25519-based commutative-encryption backend: the
// prime-order (ℓ ≈ 2^252) subgroup of edwards25519, with
// f_e(x) = e·x over hashed-to-curve points.  Commutativity is
// immediate from scalar-multiplication associativity, and the DDH
// assumption this group is standardly believed to satisfy is the same
// assumption the paper's Example 1 needs — at ~128-bit security, i.e.
// at least the strength of a 1024-bit safe prime (ECRYPT/NIST put
// 1024-bit factoring-class moduli at ~80-bit security), for a small
// fraction of the per-operation cost.
//
// Elements cross package boundaries as *big.Int containers holding the
// 32-byte compressed-Edwards-y encoding read as a big-endian integer;
// numeric order on containers therefore equals lexicographic order of
// the wire bytes, exactly as for safe-prime residues.
//
// An ECGroup is stateless, immutable, and safe for concurrent use.
type ECGroup struct{}

var (
	ecSingleton     = &ECGroup{}
	ecDigest        [32]byte
	ecDigestOnce    sync.Once
	ecScalarModulus = ec25519.Order()
)

// EC25519 returns the Curve25519 backend (a shared singleton).
func EC25519() *ECGroup { return ecSingleton }

var _ Backend = (*ECGroup)(nil)

// Name returns the backend registry name "ec25519".
func (*ECGroup) Name() string { return "ec25519" }

// Code returns CodeEC25519, the backend's handshake identifier.
func (*ECGroup) Code() Code { return CodeEC25519 }

// Bits returns the wire codeword width: 256 bits per transmitted
// element (the paper's parameter k in the §6.1 communication terms).
func (*ECGroup) Bits() int { return 8 * ec25519.EncodedLen }

// ElementLen returns the fixed element encoding width, 32 bytes.
func (*ECGroup) ElementLen() int { return ec25519.EncodedLen }

// String implements fmt.Stringer.
func (*ECGroup) String() string {
	return "edwards25519 prime-order subgroup (ec25519)"
}

// ParamDigest identifies the curve parameters for the handshake's
// group check: SHA-256 of the canonical parameter string.
func (*ECGroup) ParamDigest() [32]byte {
	ecDigestOnce.Do(func() { ecDigest = sha256.Sum256([]byte(ecParamID)) })
	return ecDigest
}

// Contains reports whether x is the container of a canonical point
// encoding in the prime-order subgroup's usable element set: it must
// decode (canonical y, on curve, canonical x sign) and must not be one
// of the eight small-torsion points.  This is the EC analogue of the
// safe-prime backend's Jacobi-symbol membership test.
func (*ECGroup) Contains(x *big.Int) bool {
	_, err := ecDecode(x)
	return err == nil
}

// ecDecode unpacks an element container into a curve point, rejecting
// anything Contains rejects.
func ecDecode(x *big.Int) (*ec25519.Point, error) {
	if x == nil || x.Sign() < 0 || x.BitLen() > 8*ec25519.EncodedLen {
		return nil, ErrNotInGroup
	}
	var buf [ec25519.EncodedLen]byte
	x.FillBytes(buf[:])
	p, err := ec25519.Decode(buf[:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotInGroup, err)
	}
	if p.IsSmallOrder() {
		return nil, fmt.Errorf("%w: small-order point", ErrNotInGroup)
	}
	return p, nil
}

// ecEncode packs a curve point into its element container.
func ecEncode(p *ec25519.Point) *big.Int {
	return new(big.Int).SetBytes(p.Encode(nil))
}

// HashInputLen returns the uniform-byte budget of MapToElement (64:
// 512 bits folded mod the field prime keep reduction bias negligible).
func (*ECGroup) HashInputLen() int { return ec25519.HashLen }

// MapToElement maps uniform bytes into the subgroup via Elligator2
// plus cofactor clearing — the EC half of the §3.2.2 random oracle.
func (*ECGroup) MapToElement(uniform []byte) *big.Int {
	return ecEncode(ec25519.MapToPoint(uniform))
}

// RandomScalar draws a uniform key scalar from KeyF = [1, ℓ-1].
func (*ECGroup) RandomScalar(r io.Reader) (*Scalar, error) {
	if r == nil {
		r = rand.Reader
	}
	lMinus1 := new(big.Int).Sub(ecScalarModulus, big.NewInt(1))
	e, err := rand.Int(r, lMinus1)
	if err != nil {
		return nil, fmt.Errorf("group: sampling ec scalar: %w", err)
	}
	e.Add(e, big.NewInt(1)) // uniform in [1, ℓ-1]
	return newScalar(e), nil
}

// ScalarFromBig validates e ∈ [1, ℓ-1] and wraps it as a key scalar.
func (*ECGroup) ScalarFromBig(e *big.Int) (*Scalar, error) {
	if e == nil || e.Sign() <= 0 || e.Cmp(ecScalarModulus) >= 0 {
		return nil, ErrBadScalar
	}
	return newScalar(new(big.Int).Set(e)), nil
}

// InvertScalar returns e' = e^{-1} mod ℓ, so that
// Apply(e', Apply(e, x)) = x (Property 3 of Definition 2).
func (*ECGroup) InvertScalar(e *Scalar) (*Scalar, error) {
	inv := new(big.Int).ModInverse(e.value(), ecScalarModulus)
	if inv == nil {
		return nil, fmt.Errorf("group: ec scalar not invertible modulo subgroup order")
	}
	return newScalar(inv), nil
}

// Apply computes f_e(x) = e·x — one scalar multiplication, the EC
// backend's C_e operation.
func (*ECGroup) Apply(e *Scalar, x *big.Int) (*big.Int, error) {
	p, err := ecDecode(x)
	if err != nil {
		return nil, err
	}
	var eb [32]byte
	e.value().FillBytes(eb[:])
	return ecEncode(p.ScalarMult(&eb)), nil
}
