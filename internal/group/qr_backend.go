package group

import (
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"
)

// Backend implementation for the safe-prime group.  *Group is the code-0
// ("qr") backend: the Example 1 domain QR(p) with f_e(x) = x^e mod p.
// Every method here must stay byte-identical to the pre-backend code
// paths — the handshake digest, the hash-to-group reduction, and the
// element encodings are all pinned by golden-vector tests.

var _ Backend = (*Group)(nil)

// Name returns the backend registry name, "qr<bits>" (e.g. "qr1024").
func (g *Group) Name() string { return fmt.Sprintf("qr%d", g.bits) }

// Code returns CodeQR: the safe-prime backend is the wire default, and
// its code 0 is what legacy headers implicitly carry.
func (g *Group) Code() Code { return CodeQR }

// ParamDigest identifies the group by SHA-256 of the big-endian modulus
// bytes — the same digest wire.GroupDigest has always put in the
// handshake header, so safe-prime sessions remain byte-identical.
func (g *Group) ParamDigest() [32]byte { return sha256.Sum256(g.p.Bytes()) }

// HashInputLen returns the uniform-byte budget of MapToElement:
// 2·ElementLen bytes, so the bias of the mod-(p-1) reduction is
// negligible (2^-Bits).
func (g *Group) HashInputLen() int { return 2 * g.ElementLen() }

// MapToElement maps HashInputLen uniform bytes into QR(p) exactly the
// way the Section 3.2.2 oracle always has: interpret the bytes as a
// big-endian integer, reduce into [1, p-1] via mod (p-1) plus one, and
// square to land in the residue subgroup.  The reduction is pinned by
// the oracle golden vectors and must not change.
func (g *Group) MapToElement(uniform []byte) *big.Int {
	v := new(big.Int).SetBytes(uniform)
	v.Mod(v, g.pMinus1)
	v.Add(v, one) // now in [1, p-1]
	return g.Square(v)
}

// RandomScalar draws a uniform commutative-encryption key from
// KeyF = [1, q-1], wrapping RandomExponent.
func (g *Group) RandomScalar(r io.Reader) (*Scalar, error) {
	e, err := g.RandomExponent(r)
	if err != nil {
		return nil, err
	}
	return newScalar(e), nil
}

// ScalarFromBig validates e ∈ [1, q-1] and wraps it as a key scalar.
func (g *Group) ScalarFromBig(e *big.Int) (*Scalar, error) {
	if e == nil || e.Sign() <= 0 || e.Cmp(g.q) >= 0 {
		return nil, ErrBadScalar
	}
	return newScalar(new(big.Int).Set(e)), nil
}

// InvertScalar returns the key scalar e' = e^{-1} mod q with
// f_{e'} = f_e^{-1} (Property 3 of Definition 2).
func (g *Group) InvertScalar(e *Scalar) (*Scalar, error) {
	inv, err := g.InvExponent(e.value())
	if err != nil {
		return nil, err
	}
	return newScalar(inv), nil
}

// Apply computes the commutative power function f_e(x) = x^e mod p —
// one C_e of the paper's cost model.  It dispatches to the fixed-width
// Montgomery ladder when the modulus has one precomputed (see Exp).
func (g *Group) Apply(e *Scalar, x *big.Int) (*big.Int, error) {
	if !g.Contains(x) {
		return nil, ErrNotInGroup
	}
	return g.Exp(x, e.value()), nil
}
