package group

import (
	"fmt"
	"sort"
	"sync"
)

// Pre-generated safe primes.  Each constant is the hexadecimal
// representation of a prime p such that (p-1)/2 is also prime; all were
// produced by the generator in this package (GenerateSafePrime) using
// crypto/rand and verified with 20 Miller-Rabin rounds plus Baillie-PSW.
//
// The small sizes (64-512 bits) exist for fast tests and exhaustive
// property checks; they are NOT cryptographically secure.  The paper's
// cost analysis uses 1024-bit moduli ("With 1024-bit hash values ...",
// Section 3.2.2; C_e timed on 1024-bit numbers, Section 6.2), so Bits1024
// is the default group for benchmarks and for the experiment harness.
const (
	safePrime64Hex   = "f010f8f7a6a1b857"
	safePrime128Hex  = "e2dc24805cda9946aadbe1c942f3e763"
	safePrime160Hex  = "dba98b6db2bbf6836491ed3db23edd639b54c73b"
	safePrime224Hex  = "d75e5f9350abb077c2b0e258450a58c6edb088c334d7b5f83a132c93"
	safePrime256Hex  = "c82d9104af1162ee8cdbab22c195fc071336b1804cabcde70b2804662b89855f"
	safePrime384Hex  = "f076fd7f23eeb2888fb5d018c163322f523da9775cbf9a85c00e9541218022e690c38feb11cb60b9ae97972e4aacf24b"
	safePrime512Hex  = "c153c24afd6d489e8d1f39bae0f7d8fe77d808cb2ad8e2f3c12b76405b21432616aa9744945b88c7b2135bc4611d7d3abda7b3d64b5ad68036511017f11c373b"
	safePrime768Hex  = "f1606aa3035ed36b84da3e5ebf76e997e62df726efa5da458ea9b4c9de32fbf1d7d0409669a32707603c233ae3d61424a4031adea44d5f07275f9e559d985172b2c008be6d572d24cb10db40cc2e13e7da7a1cb0d7bc4e6b57a0bc93bb6ea52b"
	safePrime1024Hex = "cc9d73bd4327952f2d1a902c4e5eb165a68be6660b72f2ee5950746c894e16e349903418f80eb5577631f4846df366a8dd4016c9d16293601ceadec632b0c5d4e301f71794eb3d2ba7c3ffc72de5cc157cb858c938cc0b58798bcad800462c59bfb5346e2dc50d48b206fc0537c7da51163b92a68db3af4c0c4f7cf14f246687"
	safePrime1536Hex = "f4163357395c2c1cbc3ea99aac46562ba7fc938b2e2d1a59514eec6e602be2c2577ecd6c163af965bc99ab4cab3786db6f62822ac9fc9de80ef32c91eb566f985d3904ea1872fe53956bf010b89fc0bc0f57d80d1c41c84e34d2e655b36ba1d3704a210cc19bb5be409a24b64574d02972f4f9aea17c87559d3a845f78f07b6045a73a29b006a8745086492f2000157165043047486f354fa3d867f34596533996f6f38f0e7f72fbdd1da95905bad49475bb1f5160a22ce2ff581782a05ce64f"
	safePrime2048Hex = "c030b91f9e75892df79e73efa2b81fb4d2de1e203141bd94527d9de516a204a06643a069238855cc7e404812fcc8a1699b0d7a3b39c4e1c6b42fe9b0c31959e744ab55428eb180a718ea6bd79204a9aee6783a50d3fcd14b33a6c5e57e1ee7398f27cb4abaf0daee324e1ab84595dcea9d9383e0da5fd0b3baddd8624343dbc4fb0477752d0fec80a3b0ccf2b9e7b25b6bb0de6449f295067b88cd91372ba34471669481f131b9f1df8435d5e4602b295cc66f2038ce10ac5e34c30c97922364a76c48009e096029c5a834ba21923b4f7d401193157076b7f862e7bf204e1bf4cb93082009cdc90cb06d0ffc468f321fbd23cb12011a605acca910d39ed43e93"
)

// Size names a pre-generated group by modulus bit length.
type Size int

// Supported pre-generated sizes.
const (
	Bits64   Size = 64
	Bits128  Size = 128
	Bits160  Size = 160
	Bits224  Size = 224
	Bits256  Size = 256
	Bits384  Size = 384
	Bits512  Size = 512
	Bits768  Size = 768
	Bits1024 Size = 1024
	Bits1536 Size = 1536
	Bits2048 Size = 2048
)

var builtinHex = map[Size]string{
	Bits64:   safePrime64Hex,
	Bits128:  safePrime128Hex,
	Bits160:  safePrime160Hex,
	Bits224:  safePrime224Hex,
	Bits256:  safePrime256Hex,
	Bits384:  safePrime384Hex,
	Bits512:  safePrime512Hex,
	Bits768:  safePrime768Hex,
	Bits1024: safePrime1024Hex,
	Bits1536: safePrime1536Hex,
	Bits2048: safePrime2048Hex,
}

var (
	builtinMu    sync.Mutex
	builtinCache = map[Size]*Group{}
)

// Builtin returns the pre-generated group of the given size.  Groups are
// validated once and cached; the returned *Group is shared and immutable.
func Builtin(size Size) (*Group, error) {
	builtinMu.Lock()
	defer builtinMu.Unlock()
	if g, ok := builtinCache[size]; ok {
		return g, nil
	}
	hex, ok := builtinHex[size]
	if !ok {
		return nil, fmt.Errorf("group: no builtin group of %d bits (have %v)", size, BuiltinSizes())
	}
	g, err := NewFromHex(hex)
	if err != nil {
		return nil, fmt.Errorf("group: builtin %d-bit group failed validation: %w", size, err)
	}
	builtinCache[size] = g
	return g, nil
}

// MustBuiltin is like Builtin but panics on error; the builtin constants
// are known-good, so this only fails on programmer error (bad size).
func MustBuiltin(size Size) *Group {
	g, err := Builtin(size)
	if err != nil {
		panic(err)
	}
	return g
}

// Default returns the 1024-bit group used throughout the paper's cost
// analysis.
func Default() *Group { return MustBuiltin(Bits1024) }

// TestGroup returns a small (256-bit) group appropriate for fast unit
// tests.  It must not be used for real deployments.
func TestGroup() *Group { return MustBuiltin(Bits256) }

// BuiltinSizes lists the available pre-generated sizes in ascending order.
func BuiltinSizes() []Size {
	sizes := make([]Size, 0, len(builtinHex))
	for s := range builtinHex {
		sizes = append(sizes, s)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	return sizes
}
