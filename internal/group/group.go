// Package group implements the number-theoretic substrate used by every
// protocol in this repository: the multiplicative group of quadratic
// residues modulo a safe prime.
//
// A safe prime is a prime p such that q = (p-1)/2 is also prime.  The set
// QR(p) of quadratic residues modulo p then forms a cyclic subgroup of
// Z_p* of prime order q.  This is exactly the domain DomF of Example 1 in
// the paper (Agrawal, Evfimievski, Srikant; SIGMOD 2003): under the
// Decisional Diffie-Hellman assumption the power function
//
//	f_e(x) = x^e mod p
//
// is a commutative encryption over QR(p).  Because q is odd, every safe
// prime satisfies p ≡ 3 (mod 4); the package exploits this to encode
// arbitrary messages m ∈ [1, q] as quadratic residues (exactly one of m
// and p-m is a residue), which Section 4.2 / Example 2 of the paper needs
// for the multiplicative payload cipher K.
//
// The package provides pre-generated groups of several bit sizes for
// tests and benchmarks, a generator for fresh groups, uniform sampling of
// elements and exponents, and constant factories for hashing into the
// group (used by package oracle).
package group

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
)

// Common errors returned by the package.
var (
	// ErrNotSafePrime reports that a modulus failed safe-prime validation.
	ErrNotSafePrime = errors.New("group: modulus is not a safe prime")
	// ErrNotInGroup reports that a value is not a quadratic residue in [1, p-1].
	ErrNotInGroup = errors.New("group: element is not in QR(p)")
	// ErrMessageRange reports that a message is outside the encodable range [1, q].
	ErrMessageRange = errors.New("group: message outside encodable range [1, (p-1)/2]")
)

var (
	one = big.NewInt(1)
	two = big.NewInt(2)
)

// Group is the multiplicative group QR(p) of quadratic residues modulo a
// safe prime p = 2q + 1.  It has prime order q.  A Group is immutable and
// safe for concurrent use.
type Group struct {
	p *big.Int // safe prime modulus
	q *big.Int // (p-1)/2, the group order, also prime

	pMinus1 *big.Int // cached p-1
	bits    int      // bit length of p

	montOnce sync.Once // lazily builds mont on first Exp
	mont     *Modulus  // Montgomery constants; nil above montMaxBits
}

// New constructs a Group from a safe prime p, validating that p and
// (p-1)/2 are (probable) primes and that p ≡ 3 (mod 4).  The validation
// uses 20 Miller-Rabin rounds plus the Baillie-PSW test built into
// math/big, so the error probability is negligible.
func New(p *big.Int) (*Group, error) {
	if p == nil || p.Sign() <= 0 {
		return nil, ErrNotSafePrime
	}
	// p ≡ 3 (mod 4) is implied by p = 2q+1 with q odd prime, but checking
	// it first is cheap and rejects most garbage before the primality test.
	if p.Bit(0) != 1 || p.Bit(1) != 1 {
		return nil, ErrNotSafePrime
	}
	q := new(big.Int).Rsh(p, 1)
	if !p.ProbablyPrime(20) || !q.ProbablyPrime(20) {
		return nil, ErrNotSafePrime
	}
	return &Group{
		p:       new(big.Int).Set(p),
		q:       q,
		pMinus1: new(big.Int).Sub(p, one),
		bits:    p.BitLen(),
	}, nil
}

// MustNew is like New but panics on error.  It is intended for package
// initialization with known-good constants.
func MustNew(p *big.Int) *Group {
	g, err := New(p)
	if err != nil {
		panic(fmt.Sprintf("group.MustNew: %v", err))
	}
	return g
}

// NewFromHex constructs a Group from a hexadecimal safe-prime string.
func NewFromHex(hex string) (*Group, error) {
	p, ok := new(big.Int).SetString(hex, 16)
	if !ok {
		return nil, fmt.Errorf("group: invalid hex modulus")
	}
	return New(p)
}

// P returns a copy of the safe-prime modulus.
func (g *Group) P() *big.Int { return new(big.Int).Set(g.p) }

// Q returns a copy of the group order q = (p-1)/2.
func (g *Group) Q() *big.Int { return new(big.Int).Set(g.q) }

// Bits returns the bit length of the modulus (the parameter k of the
// paper's cost analysis: each transmitted codeword is k bits).
func (g *Group) Bits() int { return g.bits }

// ElementLen returns the length in bytes of the fixed-width encoding of a
// group element, ceil(Bits/8).
func (g *Group) ElementLen() int { return (g.bits + 7) / 8 }

// String implements fmt.Stringer.
func (g *Group) String() string {
	return fmt.Sprintf("QR(p) with %d-bit safe prime", g.bits)
}

// Equal reports whether two groups share the same modulus.
func (g *Group) Equal(h *Group) bool {
	return h != nil && g.p.Cmp(h.p) == 0
}

// Contains reports whether x is a quadratic residue in [1, p-1], i.e. a
// member of the group.
func (g *Group) Contains(x *big.Int) bool {
	if x == nil || x.Sign() <= 0 || x.Cmp(g.p) >= 0 {
		return false
	}
	return big.Jacobi(x, g.p) == 1
}

// check returns ErrNotInGroup unless x ∈ QR(p).
func (g *Group) check(x *big.Int) error {
	if !g.Contains(x) {
		return ErrNotInGroup
	}
	return nil
}

// Mul returns x*y mod p.
func (g *Group) Mul(x, y *big.Int) *big.Int {
	z := new(big.Int).Mul(x, y)
	return z.Mod(z, g.p)
}

// montMaxBits bounds the moduli routed through the fixed-width
// Montgomery path: exactly the 4-word (up to 256-bit) widths served by
// the unrolled montMul4/exp4 kernel.  There, amortizing the
// per-modulus setup (R², -p⁻¹, word conversion) across a session's
// thousands of exponentiations plus the register-resident kernel beat
// big.Int.Exp, which re-derives the setup per call; at wider moduli
// math/big's assembly inner loops win, so those fall through.  The
// crossover is measured by BenchmarkMontVsBigExp.
const montMaxBits = 256

// Exp returns x^e mod p.  This is the commutative-encryption primitive
// f_e(x) of Example 1; its cost is the paper's C_e.  Moduli up to
// montMaxBits are served by the precomputed fixed-width Montgomery
// ladder (see Modulus); larger ones fall through to big.Int.Exp.
// x must lie in [0, p) and e must be non-negative on the Montgomery
// path, which all protocol call sites guarantee.
func (g *Group) Exp(x, e *big.Int) *big.Int {
	if m := g.montModulus(); m != nil &&
		x.Sign() >= 0 && x.Cmp(g.p) < 0 && e.Sign() >= 0 && e.BitLen() <= 64*m.Words() {
		return m.Exp(x, e)
	}
	return new(big.Int).Exp(x, e, g.p)
}

// montModulus returns the group's precomputed Montgomery constants,
// building them on first use, or nil when the modulus is wide enough
// that big.Int.Exp is faster.
func (g *Group) montModulus() *Modulus {
	g.montOnce.Do(func() {
		if g.bits <= montMaxBits && (g.bits+63)/64 == 4 {
			m, err := NewModulus(g.p)
			if err == nil {
				g.mont = m
			}
		}
	})
	return g.mont
}

// Inv returns the multiplicative inverse of x modulo p.
func (g *Group) Inv(x *big.Int) *big.Int {
	return new(big.Int).ModInverse(x, g.p)
}

// Square returns x^2 mod p.  Squaring maps Z_p* onto QR(p) two-to-one and
// is how package oracle lands hash outputs inside the group.
func (g *Group) Square(x *big.Int) *big.Int {
	z := new(big.Int).Mul(x, x)
	return z.Mod(z, g.p)
}

// InvExponent returns the exponent e' with f_{e'} = f_e^{-1}, i.e.
// e' = e^{-1} mod q (Property 3 of Definition 2).  It returns an error if
// e is not invertible modulo q (only e ≡ 0 mod q is excluded since q is
// prime).
func (g *Group) InvExponent(e *big.Int) (*big.Int, error) {
	inv := new(big.Int).ModInverse(e, g.q)
	if inv == nil {
		return nil, fmt.Errorf("group: exponent %v not invertible modulo group order", e)
	}
	return inv, nil
}

// RandomExponent samples a uniformly random exponent in [1, q-1] suitable
// as a commutative-encryption key (KeyF of Example 1).  The randomness is
// drawn from r, which defaults to crypto/rand.Reader when nil.
func (g *Group) RandomExponent(r io.Reader) (*big.Int, error) {
	if r == nil {
		r = rand.Reader
	}
	qMinus1 := new(big.Int).Sub(g.q, one)
	for {
		e, err := rand.Int(r, qMinus1)
		if err != nil {
			return nil, fmt.Errorf("group: sampling exponent: %w", err)
		}
		e.Add(e, one) // now uniform in [1, q-1]
		if e.Sign() > 0 {
			return e, nil
		}
	}
}

// RandomElement samples a uniformly random element of QR(p) by squaring a
// uniform element of Z_p*.  The randomness is drawn from r, which
// defaults to crypto/rand.Reader when nil.
func (g *Group) RandomElement(r io.Reader) (*big.Int, error) {
	if r == nil {
		r = rand.Reader
	}
	for {
		x, err := rand.Int(r, g.pMinus1)
		if err != nil {
			return nil, fmt.Errorf("group: sampling element: %w", err)
		}
		x.Add(x, one) // uniform in [1, p-1]
		return g.Square(x), nil
	}
}

// EncodeMessage embeds a message m ∈ [1, q] into QR(p).  Because
// p ≡ 3 (mod 4), -1 is a quadratic non-residue, so exactly one of m and
// p-m is a residue; EncodeMessage returns that one.  DecodeMessage
// inverts the embedding.  This realises the message encoding needed by
// the multiplicative payload cipher of Example 2.
func (g *Group) EncodeMessage(m *big.Int) (*big.Int, error) {
	if m == nil || m.Sign() <= 0 || m.Cmp(g.q) > 0 {
		return nil, ErrMessageRange
	}
	if big.Jacobi(m, g.p) == 1 {
		return new(big.Int).Set(m), nil
	}
	return new(big.Int).Sub(g.p, m), nil
}

// DecodeMessage inverts EncodeMessage: it maps a group element back to
// the unique preimage in [1, q].
func (g *Group) DecodeMessage(x *big.Int) (*big.Int, error) {
	if err := g.check(x); err != nil {
		return nil, err
	}
	if x.Cmp(g.q) <= 0 {
		return new(big.Int).Set(x), nil
	}
	return new(big.Int).Sub(g.p, x), nil
}

// Generator returns a generator of QR(p).  4 = 2^2 is always a quadratic
// residue; since the group has prime order q, every element other than 1
// generates it, and 4 ≠ 1 for every safe prime p > 3.
func (g *Group) Generator() *big.Int {
	return big.NewInt(4)
}
