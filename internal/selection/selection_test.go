package selection

import (
	"bytes"
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"minshare/internal/group"
	"minshare/internal/transport"
)

func testCfg(seed int64) Config {
	return Config{Group: group.TestGroup(), Rand: rand.New(rand.NewSource(seed))}
}

func runSelection(t *testing.T, records [][]byte, index int) (*Result, error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()

	ch := make(chan error, 1)
	go func() {
		err := Sender(ctx, testCfg(1), connS, records)
		if err != nil {
			connS.Close()
		}
		ch <- err
	}()
	res, err := Receiver(ctx, testCfg(2), connR, index)
	if err != nil {
		connR.Close()
		<-ch
		return nil, err
	}
	if sErr := <-ch; sErr != nil {
		return nil, fmt.Errorf("sender: %w", sErr)
	}
	return res, nil
}

func TestSelectionEveryIndex(t *testing.T) {
	records := [][]byte{
		[]byte("row 0: ann, oslo"),
		[]byte("row 1: bob"),
		[]byte("row 2: a rather longer record about carol and her many orders"),
		[]byte(""),
		[]byte("row 4: final"),
	}
	for i := range records {
		res, err := runSelection(t, records, i)
		if err != nil {
			t.Fatalf("index %d: %v", i, err)
		}
		if !bytes.Equal(res.Record, records[i]) {
			t.Errorf("index %d: got %q, want %q", i, res.Record, records[i])
		}
		if res.NumRecords != len(records) {
			t.Errorf("NumRecords = %d", res.NumRecords)
		}
	}
}

func TestSelectionSingleRecord(t *testing.T) {
	res, err := runSelection(t, [][]byte{[]byte("only")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Record) != "only" {
		t.Errorf("got %q", res.Record)
	}
}

func TestSelectionPowerOfTwoAndOdd(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8, 9, 16} {
		records := make([][]byte, n)
		for i := range records {
			records[i] = []byte(fmt.Sprintf("rec-%d", i))
		}
		idx := n / 2
		res, err := runSelection(t, records, idx)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(res.Record, records[idx]) {
			t.Errorf("n=%d: got %q", n, res.Record)
		}
	}
}

func TestSelectionIndexOutOfRange(t *testing.T) {
	records := [][]byte{[]byte("a"), []byte("b")}
	if _, err := runSelection(t, records, 7); err == nil {
		t.Error("out-of-range index accepted")
	}
	ctx := context.Background()
	if _, err := Receiver(ctx, testCfg(1), nil, -1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestSelectionNoRecords(t *testing.T) {
	if err := Sender(context.Background(), testCfg(1), nil, nil); err == nil {
		t.Error("empty record set accepted")
	}
}

// TestSelectionSenderViewHidesIndex is the structural privacy check for
// S: everything S receives is the hello frame plus uniformly random
// group elements (the PK0s), identical in distribution for every index.
func TestSelectionSenderViewHidesIndex(t *testing.T) {
	records := [][]byte{[]byte("r0"), []byte("r1"), []byte("r2"), []byte("r3")}
	g := group.TestGroup()
	for _, index := range []int{0, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		connR, connS := transport.Pipe()
		tap := transport.NewTap(connS)

		ch := make(chan error, 1)
		go func() { ch <- Sender(ctx, testCfg(1), tap, records) }()
		if _, err := Receiver(ctx, testCfg(2), connR, index); err != nil {
			t.Fatal(err)
		}
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
		frames := tap.Received()
		if len(frames) != 2 {
			t.Fatalf("S received %d frames, want 2 (hello + PK0s)", len(frames))
		}
		pk0s := frames[1]
		elemLen := g.ElementLen()
		if len(pk0s)%elemLen != 0 {
			t.Fatalf("PK0 frame of %d bytes", len(pk0s))
		}
		// Every PK0 is a valid group element; nothing else is present.
		for off := 0; off < len(pk0s); off += elemLen {
			x := bytesToInt(pk0s[off : off+elemLen])
			if !g.Contains(x) {
				t.Errorf("index %d: PK0 at offset %d not a group element", index, off)
			}
		}
		cancel()
		connR.Close()
	}
}

// TestSelectionReceiverGetsPaddedLengthsOnly: all records are padded to
// the longest, so the byte volume R receives is independent of which
// record it asked for and of the other records' lengths.
func TestSelectionReceiverTrafficIndexIndependent(t *testing.T) {
	records := [][]byte{
		[]byte("short"),
		bytes.Repeat([]byte("x"), 500),
		[]byte("mid-length record"),
	}
	var sizes []int64
	for index := range records {
		ctx := context.Background()
		connR, connS := transport.Pipe()
		meter := transport.NewMeter(connR)
		ch := make(chan error, 1)
		go func() { ch <- Sender(ctx, testCfg(1), connS, records) }()
		if _, err := Receiver(ctx, testCfg(2), meter, index); err != nil {
			t.Fatal(err)
		}
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, meter.BytesRecv())
		connR.Close()
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != sizes[0] {
			t.Errorf("received bytes differ across indices: %v", sizes)
		}
	}
}

func bytesToInt(b []byte) *big.Int { return new(big.Int).SetBytes(b) }
