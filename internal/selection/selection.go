// Package selection implements the database SELECTION operation in the
// paper's minimal-sharing setting: party R retrieves the i-th record
// from party S's n records such that S learns nothing about i and R
// learns nothing beyond record i (and n).
//
// Section 2.4 of the paper identifies this as symmetric private
// information retrieval and notes that "this literature will be useful
// for developing protocols for the selection operation in our setting";
// Section 7 lists protocols for further database operations as future
// work.  This package supplies that operation, built from the 1-out-of-n
// oblivious transfer of package ot (log₂ n Bellare-Micali 1-of-2
// transfers plus n masked records) over the same transports the main
// protocols use.
//
// Wire format (all frames little, lengths explicit):
//
//	R → S  [8]byte         requested record length cap (0 = accept sender's)
//	S → R  params          n, record length, OT bits, public C
//	R → S  PK0 batch       one per index bit
//	S → R  ciphertexts     per-bit OT ciphertext pairs + n masked records
package selection

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"minshare/internal/group"
	"minshare/internal/ot"
	"minshare/internal/transport"
)

// Config parameterizes a selection session.
type Config struct {
	// Group hosts the oblivious transfers; defaults to the small builtin
	// 256-bit group (OT needs far less than the PSI protocols' modulus).
	Group *group.Group
	// Rand is the randomness source (nil = crypto/rand).
	Rand io.Reader
}

func (c Config) normalized() Config {
	if c.Group == nil {
		c.Group = group.MustBuiltin(group.Bits256)
	}
	return c
}

// ErrBadFrame reports a malformed peer message.
var ErrBadFrame = errors.New("selection: malformed frame")

// maxRecords bounds n against resource exhaustion.
const maxRecords = 1 << 20

// Result is what the receiver learns.
type Result struct {
	// Record is the retrieved record.
	Record []byte
	// NumRecords is n (announced by the sender; permitted information,
	// mirroring the |V_S| disclosure of the main protocols).
	NumRecords int
}

// Sender serves one selection session over its records.  All records are
// padded to the longest record's length before masking, so the receiver
// learns no per-record length information either.
func Sender(ctx context.Context, cfg Config, conn transport.Conn, records [][]byte) error {
	cfg = cfg.normalized()
	if len(records) == 0 {
		return errors.New("selection: no records to serve")
	}
	if len(records) > maxRecords {
		return fmt.Errorf("selection: %d records exceed the %d cap", len(records), maxRecords)
	}

	// Frame 1: receiver hello (ignored content, reserves protocol room).
	if _, err := conn.Recv(ctx); err != nil {
		return fmt.Errorf("selection: receiving hello: %w", err)
	}

	recLen := 0
	for _, r := range records {
		if len(r) > recLen {
			recLen = len(r)
		}
	}
	// Pad: 4-byte true length prefix + payload.
	padded := make([][]byte, len(records))
	for i, r := range records {
		p := make([]byte, 4+recLen)
		binary.BigEndian.PutUint32(p, uint32(len(r)))
		copy(p[4:], r)
		padded[i] = p
	}

	setup, err := ot.NewSelectSetup(len(records), cfg.Rand)
	if err != nil {
		return err
	}
	sender, err := ot.NewSender(cfg.Group, cfg.Rand)
	if err != nil {
		return err
	}
	elemLen := cfg.Group.ElementLen()

	// Frame 2: params = n, padded record len, bits, C.
	params := make([]byte, 8+8+8, 8+8+8+elemLen)
	binary.BigEndian.PutUint64(params[0:8], uint64(len(records)))
	binary.BigEndian.PutUint64(params[8:16], uint64(4+recLen))
	binary.BigEndian.PutUint64(params[16:24], uint64(setup.NumBits()))
	params = append(params, fixed(sender.PublicC(), elemLen)...)
	if err := conn.Send(ctx, params); err != nil {
		return fmt.Errorf("selection: sending params: %w", err)
	}

	// Frame 3: receiver's PK0 batch, one per index bit.
	frame, err := conn.Recv(ctx)
	if err != nil {
		return fmt.Errorf("selection: receiving PK0 batch: %w", err)
	}
	if len(frame) != setup.NumBits()*elemLen {
		return fmt.Errorf("%w: PK0 batch of %d bytes, want %d", ErrBadFrame, len(frame), setup.NumBits()*elemLen)
	}

	// Frame 4: per-bit OT ciphertexts + the n masked records.
	reply := make([]byte, 0)
	for j := 0; j < setup.NumBits(); j++ {
		pk0 := new(big.Int).SetBytes(frame[j*elemLen : (j+1)*elemLen])
		k0, k1, err := setup.KeyPair(j)
		if err != nil {
			return err
		}
		ct, err := sender.Transfer(pk0, k0, k1)
		if err != nil {
			return fmt.Errorf("selection: OT bit %d: %w", j, err)
		}
		reply = append(reply, fixed(ct.G0, elemLen)...)
		reply = append(reply, ct.E0...)
		reply = append(reply, fixed(ct.G1, elemLen)...)
		reply = append(reply, ct.E1...)
	}
	masked, err := setup.MaskMessages(padded)
	if err != nil {
		return err
	}
	for _, m := range masked {
		reply = append(reply, m...)
	}
	if err := conn.Send(ctx, reply); err != nil {
		return fmt.Errorf("selection: sending ciphertexts: %w", err)
	}
	return nil
}

// Receiver retrieves record `index` from the sender's records.
func Receiver(ctx context.Context, cfg Config, conn transport.Conn, index int) (*Result, error) {
	cfg = cfg.normalized()
	if index < 0 {
		return nil, fmt.Errorf("selection: negative index %d", index)
	}

	// Frame 1: hello.
	if err := conn.Send(ctx, []byte{0}); err != nil {
		return nil, fmt.Errorf("selection: sending hello: %w", err)
	}

	// Frame 2: params.
	elemLen := cfg.Group.ElementLen()
	frame, err := conn.Recv(ctx)
	if err != nil {
		return nil, fmt.Errorf("selection: receiving params: %w", err)
	}
	if len(frame) != 24+elemLen {
		return nil, fmt.Errorf("%w: params of %d bytes", ErrBadFrame, len(frame))
	}
	n := int(binary.BigEndian.Uint64(frame[0:8]))
	paddedLen := int(binary.BigEndian.Uint64(frame[8:16]))
	bits := int(binary.BigEndian.Uint64(frame[16:24]))
	if n <= 0 || n > maxRecords || bits <= 0 || bits > 32 || paddedLen < 4 {
		return nil, fmt.Errorf("%w: params n=%d bits=%d len=%d", ErrBadFrame, n, bits, paddedLen)
	}
	if index >= n {
		return nil, fmt.Errorf("selection: index %d out of range [0,%d)", index, n)
	}
	receiver, err := ot.NewReceiver(cfg.Group, new(big.Int).SetBytes(frame[24:]), cfg.Rand)
	if err != nil {
		return nil, err
	}

	// Frame 3: PK0s for the index bits.
	choiceBits := ot.IndexBits(index, bits)
	choices := make([]*ot.Choice, bits)
	pk0s := make([]byte, 0, bits*elemLen)
	for j, bit := range choiceBits {
		ch, err := receiver.Choose(bit)
		if err != nil {
			return nil, fmt.Errorf("selection: OT choose %d: %w", j, err)
		}
		choices[j] = ch
		pk0s = append(pk0s, fixed(ch.PK0, elemLen)...)
	}
	if err := conn.Send(ctx, pk0s); err != nil {
		return nil, fmt.Errorf("selection: sending PK0 batch: %w", err)
	}

	// Frame 4: OT ciphertexts + masked records.
	frame, err = conn.Recv(ctx)
	if err != nil {
		return nil, fmt.Errorf("selection: receiving ciphertexts: %w", err)
	}
	const keyMsgLen = 16 // ot.keyLen
	perBit := 2*elemLen + 2*keyMsgLen
	want := bits*perBit + n*paddedLen
	if len(frame) != want {
		return nil, fmt.Errorf("%w: ciphertext frame of %d bytes, want %d", ErrBadFrame, len(frame), want)
	}
	bitKeys := make([][]byte, bits)
	for j := 0; j < bits; j++ {
		chunk := frame[j*perBit : (j+1)*perBit]
		ct := &ot.Ciphertexts{
			G0: new(big.Int).SetBytes(chunk[:elemLen]),
			E0: chunk[elemLen : elemLen+keyMsgLen],
			G1: new(big.Int).SetBytes(chunk[elemLen+keyMsgLen : 2*elemLen+keyMsgLen]),
			E1: chunk[2*elemLen+keyMsgLen:],
		}
		key, err := receiver.Open(choices[j], ct)
		if err != nil {
			return nil, fmt.Errorf("selection: OT open %d: %w", j, err)
		}
		bitKeys[j] = key
	}
	maskedAll := frame[bits*perBit:]
	ciphertexts := make([][]byte, n)
	for t := 0; t < n; t++ {
		ciphertexts[t] = maskedAll[t*paddedLen : (t+1)*paddedLen]
	}
	padded, err := ot.UnmaskMessage(index, bitKeys, ciphertexts)
	if err != nil {
		return nil, err
	}
	trueLen := int(binary.BigEndian.Uint32(padded[:4]))
	if trueLen > paddedLen-4 {
		return nil, fmt.Errorf("%w: record length %d exceeds padding", ErrBadFrame, trueLen)
	}
	return &Result{Record: padded[4 : 4+trueLen], NumRecords: n}, nil
}

func fixed(x *big.Int, n int) []byte {
	b := x.Bytes()
	out := make([]byte, n)
	copy(out[n-len(b):], b)
	return out
}
