package costmodel

import (
	"math"
	"testing"
	"time"

	"minshare/internal/group"
)

// within checks v ≈ want to a relative tolerance.
func within(t *testing.T, name string, v, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if v != 0 {
			t.Errorf("%s = %g, want 0", name, v)
		}
		return
	}
	if math.Abs(v-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %s, want ≈ %s (±%.0f%%)", name, FormatApprox(v), FormatApprox(want), relTol*100)
	}
}

func TestSection61Formulas(t *testing.T) {
	o := IntersectionOps(100, 200)
	if o.Ce != 600 { // 2(|V_S|+|V_R|)
		t.Errorf("intersection Ce = %d, want 600", o.Ce)
	}
	if o.Ch != 300 {
		t.Errorf("intersection Ch = %d, want 300", o.Ch)
	}
	j := JoinOps(100, 200, 40)
	if j.Ce != 2*100+5*200 {
		t.Errorf("join Ce = %d, want 1200", j.Ce)
	}
	if j.CK != 140 {
		t.Errorf("join CK = %d, want 140", j.CK)
	}
	s := IntersectionSizeOps(10, 10)
	if s.Ce != IntersectionOps(10, 10).Ce {
		t.Error("intersection-size cost differs from intersection")
	}
}

func TestCommunicationFormulas(t *testing.T) {
	if got := IntersectionCommBits(100, 200, 1024); got != float64(100+400)*1024 {
		t.Errorf("intersection comm = %g", got)
	}
	if got := JoinCommBits(100, 200, 1024, 2048); got != float64(700)*1024+float64(100)*2048 {
		t.Errorf("join comm = %g", got)
	}
}

func TestOpCountsTime(t *testing.T) {
	c := Costs{Ce: time.Millisecond, Ch: time.Microsecond}
	o := OpCounts{Ce: 1000, Ch: 1000}
	seq := o.Time(c, 1)
	par := o.Time(c, 10)
	if seq != time.Second+time.Millisecond {
		t.Errorf("sequential time = %v", seq)
	}
	if par != 100*time.Millisecond+time.Millisecond {
		t.Errorf("parallel time = %v", par)
	}
	if o.Time(c, 0) != seq {
		t.Error("p=0 should clamp to 1")
	}
}

// TestDocShareEstimatePaperNumbers reproduces Section 6.2.1: |D_R| = 10,
// |D_S| = 100, |d_R| = |d_S| = 1000 words, k = 1024 → 4×10^6
// exponentiations ≈ 2 hours at P = 10, and 3×10^6·k ≈ 3 Gbit ≈ 35 min
// on a T1.
func TestDocShareEstimatePaperNumbers(t *testing.T) {
	e := DocShareEstimate(10, 100, 1000, 1000, PaperK, PaperCosts, PaperParallelism, 1.544e6)
	within(t, "exponentiations", e.Exponentiations, 4e6, 0.01)
	within(t, "bits", e.Bits, 3e6*1024, 0.03)
	// 4e6 × 0.02s / 10 = 8000 s ≈ 2.2 h.
	if e.CompTime < 2*time.Hour || e.CompTime > 2*time.Hour+30*time.Minute {
		t.Errorf("comp time = %v, want ≈ 2.2 h (paper: ≈ 2 hours)", e.CompTime)
	}
	// 3.07 Gbit / 1.544 Mbit/s ≈ 33 min (paper rounds to 35).
	if e.CommTime < 30*time.Minute || e.CommTime > 36*time.Minute {
		t.Errorf("comm time = %v, want ≈ 33 min (paper: ≈ 35 minutes)", e.CommTime)
	}
}

// TestMedicalEstimatePaperNumbers reproduces Section 6.2.2: |V_R| =
// |V_S| = 10^6 → 8×10^6 exponentiations ≈ 4 hours, 8×10^6·k ≈ 8 Gbit ≈
// 1.5 hours.
func TestMedicalEstimatePaperNumbers(t *testing.T) {
	e := MedicalEstimate(1_000_000, 1_000_000, PaperK, PaperCosts, PaperParallelism, 1.544e6)
	within(t, "exponentiations", e.Exponentiations, 8e6, 0.01)
	within(t, "bits", e.Bits, 8e6*1024, 0.01)
	// 8e6 × 0.02 / 10 = 16000 s ≈ 4.4 h.
	if e.CompTime < 4*time.Hour || e.CompTime > 5*time.Hour {
		t.Errorf("comp time = %v, want ≈ 4.4 h (paper: ≈ 4 hours)", e.CompTime)
	}
	// 8.19 Gbit / 1.544 Mbit/s ≈ 88 min.
	if e.CommTime < 80*time.Minute || e.CommTime > 100*time.Minute {
		t.Errorf("comm time = %v, want ≈ 88 min (paper: ≈ 1.5 hours)", e.CommTime)
	}
}

func TestOTConstants(t *testing.T) {
	// Appendix A.1.1: l = 8 optimal, C_ot = 0.157·C_e, C'_ot ≥ 32·k1.
	if l := OptimalOTBatch(); l != 8 {
		t.Errorf("optimal l = %d, want 8", l)
	}
	within(t, "OT factor", OTComputeFactor(8), 0.157, 0.01)
	within(t, "OT comm", OTCommBitsPerTransfer(8, PaperK1), 32*100, 0.01)
}

func TestGateConstants(t *testing.T) {
	if GatesEqual(32) != 63 {
		t.Errorf("G_e(32) = %g, want 63 (2w−1)", GatesEqual(32))
	}
	if GatesLess(32) != 157 {
		t.Errorf("G_l(32) = %g, want 157 (5w−3)", GatesLess(32))
	}
}

// TestPartitionTablePaperNumbers reproduces the A.1.2 table:
//
//	n          m    f(n)
//	10,000     11   2.3×10^8
//	1 million  19   7.3×10^10
//	100 million 32  1.9×10^13
//
// with brute force 6.3×10^9, 6.3×10^13, 6.3×10^17.
func TestPartitionTablePaperNumbers(t *testing.T) {
	rows := PartitionTable(PaperW, 1e4, 1e6, 1e8)
	wantM := []int{11, 19, 32}
	wantF := []float64{2.3e8, 7.3e10, 1.9e13}
	wantBF := []float64{6.3e9, 6.3e13, 6.3e17}
	for i, row := range rows {
		// The appendix's m values come from the same minimization; allow
		// ±1 for tie-breaking but require the f value to match closely.
		if row.OptimalM < wantM[i]-1 || row.OptimalM > wantM[i]+1 {
			t.Errorf("n=%g: optimal m = %d, want %d", row.N, row.OptimalM, wantM[i])
		}
		within(t, "f(n)", row.Partition, wantF[i], 0.05)
		within(t, "brute force", row.BruteForce, wantBF[i], 0.01)
	}
}

// TestComparisonTablePaperNumbers reproduces both A.2 tables.
func TestComparisonTablePaperNumbers(t *testing.T) {
	rows := ComparisonTable(PaperW, 8, PaperK0, PaperK1, PaperK, 1e4, 1e6, 1e8)

	// Computation table: circuit input 5×10^4/5×10^6/5×10^8 Ce;
	// evaluation 4.7×10^8/1.5×10^11/3.8×10^13 Cr; ours 4×10^4/4×10^6/4×10^8 Ce.
	wantInput := []float64{5e4, 5e6, 5e8}
	wantEval := []float64{4.7e8, 1.5e11, 3.8e13}
	wantOurs := []float64{4e4, 4e6, 4e8}
	// Communication: input OT 10^9/10^11/10^13; tables 6.0×10^10/1.8×10^13/4.9×10^15;
	// ours 3×10^7/3×10^9/3×10^11.
	wantInBits := []float64{1e9, 1e11, 1e13}
	wantTblBits := []float64{6.0e10, 1.8e13, 4.9e15}
	wantOursBits := []float64{3e7, 3e9, 3e11}

	for i, row := range rows {
		within(t, "circuit input Ce", row.CircuitInputCe, wantInput[i], 0.02)
		within(t, "circuit eval Cr", row.CircuitEvalCr, wantEval[i], 0.05)
		within(t, "ours Ce", row.OursCe, wantOurs[i], 0.01)
		within(t, "circuit input bits", row.CircuitInputBits, wantInBits[i], 0.03)
		within(t, "circuit table bits", row.CircuitTableBits, wantTblBits[i], 0.05)
		within(t, "ours bits", row.OursBits, wantOursBits[i], 0.03)
	}
}

// TestHeadlineClaim reproduces the closing comparison: at n = 10^6 the
// circuit protocol needs ≈ 144 days of T1 time versus ≈ 0.5 hours for
// the paper's protocol — a factor of several thousand.
func TestHeadlineClaim(t *testing.T) {
	rows := ComparisonTable(PaperW, 8, PaperK0, PaperK1, PaperK, 1e6)
	row := rows[0]
	t1 := 1.544e6 // bits per second

	circuitSeconds := (row.CircuitInputBits + row.CircuitTableBits) / t1
	oursSeconds := row.OursBits / t1

	circuitDays := circuitSeconds / 86400
	oursHours := oursSeconds / 3600

	// Paper: "the communication time for the circuit-based protocol is
	// 144 days ..., versus 0.5 hours for our protocol."  (The 144-day
	// figure follows from ≈1.9×10^13 total bits; with the paper's own
	// rounded 1.8×10^13 table bits it is ≈135-150 days.)
	if circuitDays < 120 || circuitDays > 160 {
		t.Errorf("circuit T1 time = %.0f days, want ≈ 144", circuitDays)
	}
	if oursHours < 0.4 || oursHours > 0.7 {
		t.Errorf("our T1 time = %.2f hours, want ≈ 0.5", oursHours)
	}
	if ratio := circuitSeconds / oursSeconds; ratio < 1000 || ratio > 10000 {
		t.Errorf("circuit/ours ratio = %.0f, want 10^3-10^4 (paper: \"1000 to 10,000 times\")", ratio)
	}
}

func TestPartitionGatesEdge(t *testing.T) {
	if !math.IsInf(PartitionGates(100, 1, 32), 1) {
		t.Error("m=1 should be infeasible")
	}
	// Larger m eventually hurts: the optimum is interior.
	n := 1e6
	mOpt := OptimalPartitionM(n, 32)
	if PartitionGates(n, mOpt, 32) > PartitionGates(n, mOpt+5, 32) {
		t.Error("claimed optimum is not better than m+5")
	}
	if PartitionGates(n, mOpt, 32) > PartitionGates(n, 2, 32) {
		t.Error("claimed optimum is not better than m=2")
	}
}

func TestCalibrateProducesSaneCosts(t *testing.T) {
	c := Calibrate(group.MustBuiltin(group.Bits256))
	if c.Ce <= 0 || c.Ch <= 0 || c.CK <= 0 || c.Cr <= 0 || c.Cmul <= 0 || c.Cs < 0 {
		t.Fatalf("non-positive cost: %+v", c)
	}
	// The paper's qualitative assumptions must hold on any modern host:
	// Ce ≫ Ch, Ce ≫ CK, Ce ≫ Cmul.
	if c.Ce < c.Ch {
		t.Errorf("Ce (%v) < Ch (%v)", c.Ce, c.Ch)
	}
	if c.Ce < c.Cmul {
		t.Errorf("Ce (%v) < Cmul (%v)", c.Ce, c.Cmul)
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestFormatApprox(t *testing.T) {
	if got := FormatApprox(2.3e8); got != "2.3×10^8" {
		t.Errorf("FormatApprox(2.3e8) = %q", got)
	}
	if got := FormatApprox(0); got != "0" {
		t.Errorf("FormatApprox(0) = %q", got)
	}
}
