// Package costmodel reproduces the paper's entire quantitative analysis:
// the Section 6.1 computation/communication formulas, the Section 6.2
// application estimates, and the Appendix A circuit-baseline cost model
// (oblivious-transfer amortization, brute-force and partitioning circuit
// sizes, and the comparison tables).
//
// Everything is expressed twice: symbolically (operation counts, gate
// counts, bit counts — exact integers/floats reproducing the paper's
// tables) and concretely (durations, via a Costs table that can hold
// either the paper's 2001 constants or values calibrated on the host
// with Calibrate).  The experiment harness prints paper-vs-model-vs-
// measured rows from these functions.
package costmodel

import (
	"fmt"
	"math"
	"time"
)

// Costs holds the per-operation time constants of the paper's analysis.
type Costs struct {
	// Ce is one commutative encryption/decryption: a k-bit modular
	// exponentiation x^y mod p (Section 6.1).
	Ce time.Duration
	// Ch is one hash evaluation.
	Ch time.Duration
	// CK is one payload encryption/decryption by K.
	CK time.Duration
	// Cs is the per-comparison sorting constant (cost of sorting n
	// encryptions is n·log n·Cs).
	Cs time.Duration
	// Cr is one pseudorandom-function evaluation (circuit evaluation,
	// Appendix A).
	Cr time.Duration
	// Cmul is one modular multiplication (Appendix A.1.1 assumes
	// Ce = 1000·Cmul when optimizing the oblivious-transfer batching).
	Cmul time.Duration
}

// PaperCosts is the constant set the paper uses: "For the cost of C_e
// (i.e., cost of x^y mod p), we use the times from [36]: 0.02s for
// 1024-bit numbers on a Pentium III (in 2001)."  The remaining constants
// are derived from the paper's stated assumptions: Ce = 1000·Cmul, and
// Ch, CK, Cs, Cr small relative to Ce (they only appear via those
// assumptions in the analysis).
var PaperCosts = Costs{
	Ce:   20 * time.Millisecond,
	Ch:   2 * time.Microsecond,
	CK:   40 * time.Microsecond, // one k-bit multiplication, ≈ Ce/1000 ≈ 20µs, doubled for encode
	Cs:   100 * time.Nanosecond,
	Cr:   2 * time.Microsecond,
	Cmul: 20 * time.Microsecond, // Ce / 1000
}

// Parallel default of the paper: "we will use a default value of P = 10".
const PaperParallelism = 10

// ---------------------------------------------------------------------
// Section 6.1 — protocol cost formulas
// ---------------------------------------------------------------------

// OpCounts is the operation census of one protocol run.
type OpCounts struct {
	Ce        int64 // commutative encryptions/decryptions
	Ch        int64 // hash evaluations
	CK        int64 // K encryptions/decryptions
	SortElems int64 // total elements passed through sorts (n log n · Cs applies)
}

// IntersectionOps returns the exact Section 6.1 census for the
// intersection protocol: (Ch + 2Ce)(|V_S|+|V_R|) plus the sorting terms
// 2·Cs|V_S|log|V_S| + 3·Cs|V_R|log|V_R|.
func IntersectionOps(nS, nR int) OpCounts {
	return OpCounts{
		Ce:        int64(2 * (nS + nR)),
		Ch:        int64(nS + nR),
		SortElems: int64(2*nS + 3*nR),
	}
}

// JoinOps returns the exact Section 6.1 census for the equijoin:
// Ch(|V_S|+|V_R|) + 2Ce|V_S| + 5Ce|V_R| + CK(|V_S|+|V_S∩V_R|) plus
// sorting terms.
func JoinOps(nS, nR, nIntersection int) OpCounts {
	return OpCounts{
		Ce:        int64(2*nS + 5*nR),
		Ch:        int64(nS + nR),
		CK:        int64(nS + nIntersection),
		SortElems: int64(2*nS + 3*nR),
	}
}

// IntersectionSizeOps equals IntersectionOps: "Both the intersection
// size and join size protocols have the same computation and
// communication complexity as the intersection protocol."
func IntersectionSizeOps(nS, nR int) OpCounts { return IntersectionOps(nS, nR) }

// ---------------------------------------------------------------------
// Encrypted-set cache — warm-run closed forms
// ---------------------------------------------------------------------
//
// When the sender replays a cached encrypted set (core.SenderSetCache),
// it skips exactly its own-set precomputation; everything the receiver
// does, and every per-session operation over the receiver's fresh Y_R,
// is unchanged.  The deltas below are the closed forms the cost
// cross-check certifies operation-for-operation against live runs.

// IntersectionWarmDelta returns exactly what a warm intersection-family
// sender saves per run: hashing V_S (Ch·|V_S|), the f_eS(h(V_S)) bulk
// exponentiation (Ce·|V_S|), and the lexicographic reorder of Y_S.
// (One key generation is also saved; key draws are not part of the
// paper's Section 6.1 census, so they are asserted separately.)
func IntersectionWarmDelta(nS int) OpCounts {
	return OpCounts{Ce: int64(nS), Ch: int64(nS), SortElems: int64(nS)}
}

// JoinWarmDelta returns exactly what a warm equijoin sender saves per
// run: hashing V_S, *two* bulk exponentiations over it (f_eS and f_e'S,
// hence Ce·2|V_S|), all |V_S| payload encryptions K(κ(v), ext(v)), and
// the reorder of the pair vector.  (Two key generations are also
// saved.)
func JoinWarmDelta(nS int) OpCounts {
	return OpCounts{Ce: int64(2 * nS), Ch: int64(nS), CK: int64(nS), SortElems: int64(nS)}
}

// IntersectionOpsWarm is the census of a cache-hit intersection run:
// total Ce drops from 2(|V_S|+|V_R|) to |V_S|+2|V_R| — the sender
// contributes only its re-encryption of Y_R.
func IntersectionOpsWarm(nS, nR int) OpCounts {
	return subtractOps(IntersectionOps(nS, nR), IntersectionWarmDelta(nS))
}

// IntersectionSizeOpsWarm equals IntersectionOpsWarm, as the cold
// censuses coincide.
func IntersectionSizeOpsWarm(nS, nR int) OpCounts { return IntersectionOpsWarm(nS, nR) }

// JoinOpsWarm is the census of a cache-hit equijoin run: total Ce drops
// from 2|V_S|+5|V_R| to 5|V_R| and CK from |V_S|+|V_S∩V_R| to
// |V_S∩V_R| — the warm sender performs no bulk work over V_S at all.
func JoinOpsWarm(nS, nR, nIntersection int) OpCounts {
	return subtractOps(JoinOps(nS, nR, nIntersection), JoinWarmDelta(nS))
}

func subtractOps(a, b OpCounts) OpCounts {
	return OpCounts{
		Ce:        a.Ce - b.Ce,
		Ch:        a.Ch - b.Ch,
		CK:        a.CK - b.CK,
		SortElems: a.SortElems - b.SortElems,
	}
}

// Time converts a census into a duration under the given constants,
// dividing the parallelizable encryption work by p processors.
func (o OpCounts) Time(c Costs, p int) time.Duration {
	if p < 1 {
		p = 1
	}
	d := time.Duration(o.Ce) * c.Ce / time.Duration(p)
	d += time.Duration(o.Ch) * c.Ch
	d += time.Duration(o.CK) * c.CK
	if o.SortElems > 1 {
		logN := math.Log2(float64(o.SortElems))
		d += time.Duration(float64(o.SortElems) * logN * float64(c.Cs))
	}
	return d
}

// IntersectionCommBits returns (|V_S| + 2|V_R|)·k, the Section 6.1
// communication cost of the intersection (and both size) protocols.
func IntersectionCommBits(nS, nR, k int) float64 {
	return float64(nS+2*nR) * float64(k)
}

// JoinCommBits returns (|V_S| + 3|V_R|)·k + |V_S|·k', the Section 6.1
// communication cost of the equijoin, where k' is the encrypted ext(v)
// size in bits.
func JoinCommBits(nS, nR, k, kPrime int) float64 {
	return float64(nS+3*nR)*float64(k) + float64(nS)*float64(kPrime)
}

// ---------------------------------------------------------------------
// Section 6.2 — application estimates
// ---------------------------------------------------------------------

// Estimate is a computation/communication projection for one workload.
type Estimate struct {
	// Exponentiations is the total C_e count.
	Exponentiations float64
	// CompTime is Exponentiations·Ce/P.
	CompTime time.Duration
	// Bits is the total communication volume.
	Bits float64
	// CommTime is Bits over the link bandwidth.
	CommTime time.Duration
}

// DocShareEstimate reproduces the Section 6.2.1 analysis for selective
// document sharing: |D_R|·|D_S| intersection-size runs over word sets of
// sizes |d_R| and |d_S|.
//
//	Computation:   |D_R|·|D_S|·(|d_R|+|d_S|)·2·Ce
//	Communication: |D_R|·|D_S|·(|d_R|+2|d_S|)·k bits
//
// With the paper's parameters (10×100 documents of 1000 words, k = 1024,
// P = 10) this yields 4×10^6 exponentiations ≈ 2 hours and 3×10^6·k ≈ 3
// Gbits ≈ 35 minutes on a T1.
func DocShareEstimate(nDR, nDS, dR, dS, k int, c Costs, p int, bitsPerSecond float64) Estimate {
	exps := float64(nDR) * float64(nDS) * float64(dR+dS) * 2
	bits := float64(nDR) * float64(nDS) * float64(dR+2*dS) * float64(k)
	return finishEstimate(exps, bits, c, p, bitsPerSecond)
}

// MedicalEstimate reproduces the Section 6.2.2 analysis for the medical
// research query: four intersection sizes whose combined cost is
// 2(|V_R|+|V_S|)·2·Ce and 2(|V_R|+|V_S|)·2k bits.  With |V_R| = |V_S| =
// 1 million, 8×10^6 exponentiations ≈ 4 hours (P = 10) and 8×10^6·k ≈ 8
// Gbits ≈ 1.5 hours on a T1.
func MedicalEstimate(nR, nS, k int, c Costs, p int, bitsPerSecond float64) Estimate {
	exps := 2 * float64(nR+nS) * 2
	bits := 2 * float64(nR+nS) * 2 * float64(k)
	return finishEstimate(exps, bits, c, p, bitsPerSecond)
}

func finishEstimate(exps, bits float64, c Costs, p int, bitsPerSecond float64) Estimate {
	if p < 1 {
		p = 1
	}
	e := Estimate{Exponentiations: exps, Bits: bits}
	e.CompTime = time.Duration(exps * float64(c.Ce) / float64(p))
	if bitsPerSecond > 0 {
		e.CommTime = time.Duration(bits / bitsPerSecond * float64(time.Second))
	}
	return e
}

// ---------------------------------------------------------------------
// Appendix A — circuit-protocol cost model
// ---------------------------------------------------------------------

// Appendix A constants: w-bit inputs, k0-bit circuit keys, k1-bit OT keys.
const (
	PaperW  = 32
	PaperK0 = 64
	PaperK1 = 100
	// PaperK is the codeword width of the main protocols.
	PaperK = 1024
)

// GatesEqual is G_e, the equality-comparator gate count: 2w−1.
func GatesEqual(w int) float64 { return float64(2*w - 1) }

// GatesLess is G_l, the less-than comparator gate count: 5w−3.
func GatesLess(w int) float64 { return float64(5*w - 3) }

// OTComputeFactor returns C_ot/C_e for the Naor-Pinkas amortized
// oblivious transfer with batching parameter l:
//
//	C_ot = (1/l)·C_e + (2^l/l)·C_×
//
// expressed in units of C_e under the appendix's assumption
// C_e = 1000·C_×.  At the optimal l = 8 this is 1/8 + 256/8/1000 =
// 0.157 (the appendix's constant).
func OTComputeFactor(l int) float64 {
	return 1/float64(l) + math.Exp2(float64(l))/float64(l)/1000
}

// OptimalOTBatch returns the l minimizing OTComputeFactor — 8 under the
// paper's assumptions.
func OptimalOTBatch() int {
	best, bestV := 1, OTComputeFactor(1)
	for l := 2; l <= 16; l++ {
		if v := OTComputeFactor(l); v < bestV {
			best, bestV = l, v
		}
	}
	return best
}

// OTCommBitsPerTransfer returns the communication lower bound per
// oblivious transfer, (2^l/l)·k1 bits — 32·k1 at l = 8.
func OTCommBitsPerTransfer(l, k1 int) float64 {
	return math.Exp2(float64(l)) / float64(l) * float64(k1)
}

// CircuitInputExponentiations returns the C_e-equivalents of coding R's
// input: w·n oblivious transfers at OTComputeFactor(l) each — ≈ 5n·Ce
// for w = 32, l = 8.
func CircuitInputExponentiations(n float64, w, l int) float64 {
	return float64(w) * n * OTComputeFactor(l)
}

// CircuitInputCommBits returns w·n·(2^l/l)·k1 — ≈ 10^5·n bits for the
// paper's constants.
func CircuitInputCommBits(n float64, w, l, k1 int) float64 {
	return float64(w) * n * OTCommBitsPerTransfer(l, k1)
}

// BruteForceGates lower-bounds the brute-force intersection circuit:
// |V_R|·|V_S|·G_e.
func BruteForceGates(n float64, w int) float64 {
	return n * n * GatesEqual(w)
}

// PartitionGates returns the Appendix A.1.2 lower bound for the
// partitioning circuit with branching factor m:
//
//	f(n) ≥ (m²/(m−1)·G_l + G_e) · (n^{log_m(2m−1)} − 1)
func PartitionGates(n float64, m, w int) float64 {
	if m < 2 {
		return math.Inf(1)
	}
	exp := math.Log(float64(2*m-1)) / math.Log(float64(m))
	lead := float64(m*m)/float64(m-1)*GatesLess(w) + GatesEqual(w)
	return lead * (math.Pow(n, exp) - 1)
}

// OptimalPartitionM returns the branching factor minimizing
// PartitionGates for the given n — the appendix finds m = 11, 19, 32 for
// n = 10^4, 10^6, 10^8.
func OptimalPartitionM(n float64, w int) int {
	best, bestV := 2, PartitionGates(n, 2, w)
	for m := 3; m <= 4096; m++ {
		if v := PartitionGates(n, m, w); v < bestV {
			best, bestV = m, v
		}
	}
	return best
}

// CircuitEvalPRFs returns the number of pseudorandom-function
// evaluations for evaluating a circuit of f gates: 2 per gate.
func CircuitEvalPRFs(gates float64) float64 { return 2 * gates }

// CircuitTablesBits returns the table traffic: 4·k0 bits per gate.
func CircuitTablesBits(gates float64, k0 int) float64 { return 4 * float64(k0) * gates }

// OurIntersectionExponentiations returns the main protocol's C_e count
// at |V_S| = |V_R| = n: 4n (the 2(|V_S|+|V_R|) of Section 6.1).
func OurIntersectionExponentiations(n float64) float64 { return 4 * n }

// OurIntersectionCommBits returns the main protocol's traffic at equal
// set sizes: 3n·k bits.
func OurIntersectionCommBits(n float64, k int) float64 { return 3 * n * float64(k) }

// ---------------------------------------------------------------------
// Appendix A tables
// ---------------------------------------------------------------------

// PartitionRow is one row of the A.1.2 circuit-size table.
type PartitionRow struct {
	N          float64
	OptimalM   int
	Partition  float64 // f(n) with the optimal m
	BruteForce float64 // n²·G_e
}

// PartitionTable reproduces the A.1.2 table for the given n values
// (the paper prints n = 10^4, 10^6, 10^8 at w = 32).
func PartitionTable(w int, ns ...float64) []PartitionRow {
	rows := make([]PartitionRow, len(ns))
	for i, n := range ns {
		m := OptimalPartitionM(n, w)
		rows[i] = PartitionRow{
			N:          n,
			OptimalM:   m,
			Partition:  PartitionGates(n, m, w),
			BruteForce: BruteForceGates(n, w),
		}
	}
	return rows
}

// ComparisonRow is one row of the A.2 computation/communication tables.
type ComparisonRow struct {
	N float64
	// Computation, in operation counts.
	CircuitInputCe float64 // OT cost in C_e units
	CircuitEvalCr  float64 // PRF evaluations
	OursCe         float64
	// Communication, in bits.
	CircuitInputBits float64
	CircuitTableBits float64
	OursBits         float64
}

// ComparisonTable reproduces both A.2 tables for the given n values
// (the paper prints n = 10^4, 10^6, 10^8).
func ComparisonTable(w, l, k0, k1, k int, ns ...float64) []ComparisonRow {
	rows := make([]ComparisonRow, len(ns))
	for i, n := range ns {
		m := OptimalPartitionM(n, w)
		f := PartitionGates(n, m, w)
		rows[i] = ComparisonRow{
			N:                n,
			CircuitInputCe:   CircuitInputExponentiations(n, w, l),
			CircuitEvalCr:    CircuitEvalPRFs(f),
			OursCe:           OurIntersectionExponentiations(n),
			CircuitInputBits: CircuitInputCommBits(n, w, l, k1),
			CircuitTableBits: CircuitTablesBits(f, k0),
			OursBits:         OurIntersectionCommBits(n, k),
		}
	}
	return rows
}

// FormatApprox renders a magnitude the way the paper's tables do
// (mantissa × 10^exponent).
func FormatApprox(v float64) string {
	if v == 0 {
		return "0"
	}
	exp := math.Floor(math.Log10(v))
	mant := v / math.Pow(10, exp)
	return fmt.Sprintf("%.1f×10^%d", mant, int(exp))
}
