package costmodel

import (
	"testing"
	"time"
)

func TestShardedOpsSums(t *testing.T) {
	shardS, shardR := []int{3, 2}, []int{4, 1}
	o := ShardedIntersectionOps(shardS, shardR)
	// Ce: 2(3+4) + 2(2+1) = 20 — identical to the unsharded 2(5+5).
	if o.Ce != 20 {
		t.Errorf("Ce = %d, want 20", o.Ce)
	}
	if o.Ce != IntersectionOps(5, 5).Ce {
		t.Errorf("sharded Ce = %d differs from unsharded %d", o.Ce, IntersectionOps(5, 5).Ce)
	}
	// Ch: per-bucket (3+4)+(2+1) = 10 plus the partition pass 10 = 20.
	if o.Ch != 20 {
		t.Errorf("Ch = %d, want 20", o.Ch)
	}
}

func TestShardedJoinOpsSums(t *testing.T) {
	shardS, shardR, shardI := []int{2, 2}, []int{3, 1}, []int{1, 0}
	o := ShardedJoinOps(shardS, shardR, shardI)
	// Ce: (2·2+5·3) + (2·2+5·1) = 19+9 = 28 = unsharded 2·4+5·4.
	if o.Ce != 28 || o.Ce != JoinOps(4, 4, 1).Ce {
		t.Errorf("Ce = %d, want 28", o.Ce)
	}
	// CK: (2+1)+(2+0) = 5 = unsharded 4+1.
	if o.CK != 5 || o.CK != JoinOps(4, 4, 1).CK {
		t.Errorf("CK = %d, want 5", o.CK)
	}
	// Ch: per-bucket 8 + partition 8 = 16.
	if o.Ch != 16 {
		t.Errorf("Ch = %d, want 16", o.Ch)
	}
}

func TestShardedWireCostEnvelope(t *testing.T) {
	// Two buckets, legacy framing: the census is the outer envelope plus
	// two full single-run censuses.
	shardS, shardR := []int{3, 2}, []int{4, 1}
	elemLen := 16
	w := ShardedIntersectionWireCost(shardS, shardR, elemLen, 0)
	single := IntersectionWireCost(3, 4, elemLen).Plus(IntersectionWireCost(2, 1, elemLen))
	if w.FramesSent != 1+single.FramesSent || w.FramesRecv != 1+single.FramesRecv {
		t.Errorf("frames = %d/%d, want outer+subs %d/%d",
			w.FramesSent, w.FramesRecv, 1+single.FramesSent, 1+single.FramesRecv)
	}
	// The payload beyond the sub-censuses is exactly one 80-byte sharded
	// header per direction.
	if got := w.PayloadBytesSent - single.PayloadBytesSent; got != 80 {
		t.Errorf("outer header payload = %d, want 80", got)
	}
}

func TestPipelinedWall(t *testing.T) {
	c, m := 100*time.Millisecond, 60*time.Millisecond
	if got := PipelinedWall(c, m, 1); got != c+m {
		t.Errorf("k=1 wall = %v, want %v", got, c+m)
	}
	// k=8: (7·100 + 160)/8 = 107.5ms.
	if got := PipelinedWall(c, m, 8); got != 107500*time.Microsecond {
		t.Errorf("k=8 wall = %v, want 107.5ms", got)
	}
	// Monotone in k, bounded below by the slower stage.
	prev := PipelinedWall(c, m, 1)
	for k := 2; k <= 64; k *= 2 {
		cur := PipelinedWall(c, m, k)
		if cur > prev {
			t.Errorf("wall increased from %v to %v at k=%d", prev, cur, k)
		}
		if cur < c {
			t.Errorf("wall %v fell below the compute bound %v at k=%d", cur, c, k)
		}
		prev = cur
	}
}

func TestShardedWallEstimate(t *testing.T) {
	c, m := 100*time.Millisecond, 60*time.Millisecond
	// One processor: sharding still overlaps compute with the link.
	if got := ShardedWallEstimate(c, m, 8, 1); got >= c+m || got < c {
		t.Errorf("1-cpu k=8 wall = %v, want within [%v, %v)", got, c, c+m)
	}
	// Eight processors: compute divides by 8 and the run goes comm-bound.
	got := ShardedWallEstimate(c, m, 8, 8)
	if got >= ShardedWallEstimate(c, m, 8, 1) {
		t.Errorf("p=8 wall %v not faster than p=1", got)
	}
	if got < m {
		t.Errorf("wall %v fell below the link bound %v", got, m)
	}
	// Degenerate parameters fall back to sequential.
	if got := ShardedWallEstimate(c, m, 1, 8); got != c+m {
		t.Errorf("k=1 estimate = %v, want %v", got, c+m)
	}
}
