package costmodel

import "minshare/internal/wire"

// Delta-maintenance closed forms (PR 9).
//
// The S27 warm forms above price a requery whose sender set is
// *unchanged*.  With delta maintenance the set may have churned: the
// sender upgrades its cached encrypted set by hashing and re-encrypting
// only the changed values (commutative.CachedSet.ApplyDelta), so a
// requery after churn c costs the warm census plus O(c) — never the
// O(|V_S|) rebuild.  A standing query goes further: the base run's
// state is retained on both sides and each mutation batch crosses the
// wire as one SubUpdate, priced by the *UpdateOps forms.  All of these
// are certified operation-for-operation against live obs counters, as
// the warm forms are.

// IntersectionDeltaUpgrade returns exactly what a delta-upgraded
// intersection-family requery adds over the pure warm run: hashing the
// churn (Ch per inserted and deleted value), one re-encryption per
// churned value under the pinned e_S, and the sort of the delta
// vectors.  Updated values (ext-only changes) cost nothing here — set
// membership is unchanged.
func IntersectionDeltaUpgrade(nIns, nDel int) OpCounts {
	c := int64(nIns + nDel)
	return OpCounts{Ce: c, Ch: c, SortElems: c}
}

// IntersectionDeltaOps is the census of a requery whose sender upgraded
// its cached set by delta: the warm census over the *current* sizes
// plus the churn surcharge.  nS is the post-churn |V_S|.
func IntersectionDeltaOps(nS, nR, nIns, nDel int) OpCounts {
	return addOps(IntersectionOpsWarm(nS, nR), IntersectionDeltaUpgrade(nIns, nDel))
}

// IntersectionSizeDeltaOps equals IntersectionDeltaOps, as the warm
// censuses coincide.
func IntersectionSizeDeltaOps(nS, nR, nIns, nDel int) OpCounts {
	return IntersectionDeltaOps(nS, nR, nIns, nDel)
}

// JoinDeltaUpgrade returns exactly what a delta-upgraded equijoin
// requery adds over the pure warm run.  Each upserted value (inserted,
// or present with a changed ext) is hashed once and encrypted twice —
// under e_S for the pair vector and under e'_S for its κ(v) — plus one
// payload encryption K(κ(v), ext(v)); each deleted value is hashed and
// encrypted once under e_S to locate it in the sorted vector.
func JoinDeltaUpgrade(nUps, nDel int) OpCounts {
	return OpCounts{
		Ce:        int64(2*nUps + nDel),
		Ch:        int64(nUps + nDel),
		CK:        int64(nUps),
		SortElems: int64(nUps + nDel),
	}
}

// JoinDeltaOps is the census of an equijoin requery whose sender
// upgraded its cached set by delta: the warm census over the current
// sizes plus the upsert/delete surcharge.  nS is the post-churn |V_S|.
func JoinDeltaOps(nS, nR, nUps, nDel, nIntersection int) OpCounts {
	return addOps(JoinOpsWarm(nS, nR, nIntersection), JoinDeltaUpgrade(nUps, nDel))
}

// IntersectionUpdateOps is the census of ONE standing-query update for
// the intersection: the sender hashes and re-encrypts the churn under
// its pinned e_S (inside ApplyDelta, which also sorts the delta), and
// the receiver strips its own layer from every pushed element by
// re-encrypting it under the retained e_R — membership of z-set values
// is then a map update, free of exponentiations.  Total Ce is therefore
// exactly 2(nIns+nDel).
func IntersectionUpdateOps(nIns, nDel int) OpCounts {
	c := int64(nIns + nDel)
	return OpCounts{Ce: 2 * c, Ch: c, SortElems: c}
}

// JoinUpdateOps is the census of ONE standing-query update for the
// equijoin: the sender pays the JoinDeltaUpgrade surcharge (hash,
// double-encrypt upserts, single-encrypt deletes, payload-encrypt
// upserts); the receiver pays NO exponentiations at all — the pushed
// elements arrive as f_eS(h(v)), the exact keys of its retained match
// index — and decrypts only the changed matches (newMatches payload
// decryptions with its retained κ values).
func JoinUpdateOps(nUps, nDel, newMatches int) OpCounts {
	o := JoinDeltaUpgrade(nUps, nDel)
	o.CK += int64(newMatches)
	return o
}

func addOps(a, b OpCounts) OpCounts {
	return OpCounts{
		Ce:        a.Ce + b.Ce,
		Ch:        a.Ch + b.Ch,
		CK:        a.CK + b.CK,
		SortElems: a.SortElems + b.SortElems,
	}
}

// SubscribeWireCost is the exact census of opening a standing query
// from R's endpoint: one Subscribe frame.  (The closing SubEnd is
// priced by SubEndWireCost, since a subscription may span arbitrarily
// many updates between the two.)
func SubscribeWireCost() WireCost {
	return WireCost{FramesSent: 1, PayloadBytesSent: wire.EncodedSubscribeLen}
}

// SubEndWireCost is the census of closing the subscription from the
// side that sends the SubEnd frame.
func SubEndWireCost() WireCost {
	return WireCost{FramesSent: 1, PayloadBytesSent: wire.EncodedSubEndLen}
}

// IntersectionDeltaWireCost is the exact census of ONE intersection
// standing-query update from R's endpoint: R receives one SubUpdate
// carrying (nIns+nDel) element codewords and sends one SubAck.
func IntersectionDeltaWireCost(nIns, nDel, elemLen int) WireCost {
	return WireCost{
		FramesSent:       1,
		FramesRecv:       1,
		PayloadBytesSent: wire.EncodedSubAckLen,
		PayloadBytesRecv: wire.EncodedSubUpdateBaseLen + int64(nIns+nDel)*int64(elemLen),
	}
}

// JoinDeltaWireCost is the exact census of ONE equijoin standing-query
// update from R's endpoint: the SubUpdate additionally carries one
// length-prefixed ext ciphertext of extLen bytes per upsert.
func JoinDeltaWireCost(nUps, nDel, elemLen, extLen int) WireCost {
	w := IntersectionDeltaWireCost(nUps, nDel, elemLen)
	w.PayloadBytesRecv += int64(nUps) * (wire.ExtLenOverhead + int64(extLen))
	return w
}
