package costmodel

import (
	"crypto/sha256"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"minshare/internal/group"
	"minshare/internal/kenc"
	"minshare/internal/oracle"
)

// Calibrate measures the paper's cost constants on the host machine for
// the given group (the paper's substrate was a 2001 Pentium III; this is
// the documented substitution).  The measurement is a fixed-iteration
// median-free average, deliberately lightweight: the experiment harness
// calls it once per run.
func Calibrate(g *group.Group) Costs {
	rng := rand.New(rand.NewSource(1))
	x, _ := g.RandomElement(rng)
	e, _ := g.RandomExponent(rng)

	// C_e: modular exponentiation.
	ce := measure(16, func() {
		_ = g.Exp(x, e)
	})

	// C_h: hash into the group.
	o := oracle.New(g)
	i := 0
	ch := measure(64, func() {
		o.Hash([]byte{byte(i), byte(i >> 8), 0x42})
		i++
	})

	// C_K: multiplicative payload encryption (Example 2).
	mult := kenc.NewMultiplicative(g)
	kappa, _ := g.RandomElement(rng)
	payload := make([]byte, mult.MaxPayload())
	ck := measure(64, func() {
		_, _ = mult.Encrypt(kappa, payload)
	})

	// C_s: per-comparison sorting constant, from sorting 4096 random
	// element encodings.
	elems := make([]string, 4096)
	for j := range elems {
		v, _ := g.RandomElement(rng)
		elems[j] = string(v.Bytes())
	}
	csTotal := measure(4, func() {
		cp := append([]string(nil), elems...)
		sort.Strings(cp)
	})
	n := float64(len(elems))
	cs := time.Duration(float64(csTotal) / (n * math.Log2(n)))

	// C_r: one pseudorandom-function evaluation (SHA-256 of two labels).
	var label [33]byte
	cr := measure(1024, func() {
		_ = sha256.Sum256(label[:])
	})

	// C_mul: one modular multiplication.
	y, _ := g.RandomElement(rng)
	cmul := measure(1024, func() {
		_ = g.Mul(x, y)
	})

	return Costs{Ce: ce, Ch: ch, CK: ck, Cs: cs, Cr: cr, Cmul: cmul}
}

func measure(iters int, f func()) time.Duration {
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return time.Since(start) / time.Duration(iters)
}

// String renders the constants for experiment output.
func (c Costs) String() string {
	return fmt.Sprintf("Ce=%v Ch=%v CK=%v Cs=%v Cr=%v Cmul=%v",
		c.Ce, c.Ch, c.CK, c.Cs, c.Cr, c.Cmul)
}
