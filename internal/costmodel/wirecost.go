package costmodel

import (
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// Byte-exact wire censuses.
//
// The Section 6.1 communication formulas count only the k-bit codewords:
// (|V_S|+2|V_R|)·k bits for intersection (and both size protocols),
// (|V_S|+3|V_R|)·k + |V_S|·k' bits for the equijoin.  A real run also
// carries a fixed envelope — two session headers, one count prefix per
// vector, one length prefix per ext ciphertext, and a frame header per
// message.  Because the codec is deterministic and fixed-width (see the
// wire package's encoded-size constants), that envelope is an exact
// affine function of the message counts, so the observed byte counters
// can be asserted equal to these functions, not merely close.

// WireCost is the exact frame/byte census of one protocol run as
// observed from the *receiver* endpoint R.  The sender's view is the
// mirror image: S sends PayloadBytesRecv and receives PayloadBytesSent.
type WireCost struct {
	// FramesSent and FramesRecv count messages (handshake included).
	FramesSent, FramesRecv int64
	// PayloadBytesSent/Recv are codec payload bytes (codewords + codec
	// envelope, no frame headers).
	PayloadBytesSent, PayloadBytesRecv int64
}

// WireBytesSent returns the on-wire bytes R sends: payload plus one
// transport frame header per frame.
func (w WireCost) WireBytesSent() int64 {
	return w.PayloadBytesSent + w.FramesSent*transport.FrameOverhead
}

// WireBytesRecv returns the on-wire bytes R receives.
func (w WireCost) WireBytesRecv() int64 {
	return w.PayloadBytesRecv + w.FramesRecv*transport.FrameOverhead
}

// WithHeaderLen adjusts a census computed for the legacy safe-prime
// header to a backend whose handshake header encodes to headerLen bytes
// (wire.HeaderLen): each direction carries exactly one header frame, so
// each payload total shifts by the difference.  The Section 6.1
// codeword terms are untouched — only the fixed envelope moves.
func (w WireCost) WithHeaderLen(headerLen int64) WireCost {
	extra := headerLen - wire.EncodedHeaderLen
	w.PayloadBytesSent += extra
	w.PayloadBytesRecv += extra
	return w
}

// TotalPayloadBytes returns payload traffic in both directions.
func (w WireCost) TotalPayloadBytes() int64 {
	return w.PayloadBytesSent + w.PayloadBytesRecv
}

// TotalWireBytes returns on-wire traffic in both directions.
func (w WireCost) TotalWireBytes() int64 {
	return w.WireBytesSent() + w.WireBytesRecv()
}

// ElementPayloadBytes returns the codeword-only byte count — the Section
// 6.1 bit formula divided by 8 — by stripping the fixed envelope from
// the payload totals: headers, per-vector count prefixes, and extra
// ext-length prefixes.
func (w WireCost) ElementPayloadBytes(vectors, extEntries int) int64 {
	return w.TotalPayloadBytes() -
		2*wire.EncodedHeaderLen -
		int64(vectors)*wire.VectorOverhead -
		int64(extEntries)*wire.ExtLenOverhead
}

// StreamedElementPayloadBytes is ElementPayloadBytes for a run in which
// every bulk vector was streamed: it strips two session headers, a
// Begin/End envelope per streamed vector, a count prefix per chunk
// frame, and the ext-length prefixes, leaving exactly the Section 6.1
// codeword bytes.  Streaming never re-encodes an element, so this must
// equal the legacy ElementPayloadBytes for the same inputs.
func (w WireCost) StreamedElementPayloadBytes(vectors int, chunkFrames int64, extEntries int) int64 {
	return w.TotalPayloadBytes() -
		2*wire.EncodedHeaderLen -
		int64(vectors)*(wire.EncodedStreamBeginLen+wire.EncodedStreamEndLen) -
		chunkFrames*wire.VectorOverhead -
		int64(extEntries)*wire.ExtLenOverhead
}

// StreamChunks returns ⌈n/chunkSize⌉, the number of StreamChunk frames a
// streamed vector of n entries occupies (an empty vector is framed by
// Begin and End alone).  chunkSize must be positive.
func StreamChunks(n, chunkSize int) int64 {
	if n <= 0 {
		return 0
	}
	return int64((n + chunkSize - 1) / chunkSize)
}

// streamedVector is the codec payload of one streamed vector: the
// Begin/End envelope, one count prefix per chunk frame, and n entries of
// entryBytes each.
func streamedVector(n int, chunks int64, entryBytes int) int64 {
	return wire.EncodedStreamBeginLen + wire.EncodedStreamEndLen +
		chunks*wire.VectorOverhead + int64(n)*int64(entryBytes)
}

// IntersectionWireCost returns the exact census of the Section 3.3
// intersection protocol from R's endpoint: R sends its header and the
// sorted Y_R (|V_R| elements); it receives S's header, the sorted Y_S
// (|V_S| elements), and the aligned re-encryptions of Y_R (|V_R|
// elements).  Codewords total (|V_S|+2|V_R|)·k bits — the Section 6.1
// formula.
func IntersectionWireCost(nS, nR, elemLen int) WireCost {
	return WireCost{
		FramesSent:       2,
		FramesRecv:       3,
		PayloadBytesSent: wire.EncodedHeaderLen + wire.VectorOverhead + int64(nR*elemLen),
		PayloadBytesRecv: wire.EncodedHeaderLen + 2*wire.VectorOverhead + int64((nS+nR)*elemLen),
	}
}

// IntersectionSizeWireCost equals IntersectionWireCost: the Section
// 5.1.1 protocol exchanges the same vectors, merely reordered.
func IntersectionSizeWireCost(nS, nR, elemLen int) WireCost {
	return IntersectionWireCost(nS, nR, elemLen)
}

// JoinSizeWireCost is IntersectionWireCost on the multiset sizes (rows
// with duplicates), per Section 5.2.
func JoinSizeWireCost(mS, mR, elemLen int) WireCost {
	return IntersectionWireCost(mS, mR, elemLen)
}

// JoinWireCost returns the exact census of the Section 4.3 equijoin from
// R's endpoint: R sends its header and Y_R (|V_R| elements); it receives
// S's header, |V_R| aligned ⟨f_eS(y), f_e'S(y)⟩ pairs (2|V_R| elements),
// and |V_S| ⟨f_eS(h(v)), c(v)⟩ pairs where each ciphertext c(v) occupies
// extLen bytes.  Codewords total (|V_S|+3|V_R|)·k + |V_S|·k' bits with
// k' = 8·extLen — the Section 6.1 formula.
func JoinWireCost(nS, nR, elemLen, extLen int) WireCost {
	return WireCost{
		FramesSent:       2,
		FramesRecv:       3,
		PayloadBytesSent: wire.EncodedHeaderLen + wire.VectorOverhead + int64(nR*elemLen),
		PayloadBytesRecv: wire.EncodedHeaderLen + 2*wire.VectorOverhead +
			int64(2*nR*elemLen) +
			int64(nS)*int64(elemLen+wire.ExtLenOverhead+extLen),
	}
}

// IntersectionWireCostChunked is IntersectionWireCost for a run in which
// both parties stream with the given chunk size: every vector becomes
// Begin + ⌈n/chunk⌉ StreamChunk frames + End.  Only the envelope
// changes; the codeword bytes are identical to the legacy census.
// chunk <= 0 falls back to the legacy (one-shot) census.
func IntersectionWireCostChunked(nS, nR, elemLen, chunk int) WireCost {
	if chunk <= 0 {
		return IntersectionWireCost(nS, nR, elemLen)
	}
	qS, qR := StreamChunks(nS, chunk), StreamChunks(nR, chunk)
	return WireCost{
		FramesSent:       1 + (qR + 2),
		FramesRecv:       1 + (qS + 2) + (qR + 2),
		PayloadBytesSent: wire.EncodedHeaderLen + streamedVector(nR, qR, elemLen),
		PayloadBytesRecv: wire.EncodedHeaderLen + streamedVector(nS, qS, elemLen) + streamedVector(nR, qR, elemLen),
	}
}

// IntersectionSizeWireCostChunked equals IntersectionWireCostChunked,
// mirroring the legacy equivalence.
func IntersectionSizeWireCostChunked(nS, nR, elemLen, chunk int) WireCost {
	return IntersectionWireCostChunked(nS, nR, elemLen, chunk)
}

// JoinSizeWireCostChunked is IntersectionWireCostChunked on the multiset
// sizes, per Section 5.2.
func JoinSizeWireCostChunked(mS, mR, elemLen, chunk int) WireCost {
	return IntersectionWireCostChunked(mS, mR, elemLen, chunk)
}

// JoinWireCostChunked is JoinWireCost with both parties streaming: the
// pair reply mirrors the incoming Y_R chunk boundaries (⌈|V_R|/chunk⌉
// frames, each pair one entry of 2k bits), and the ext-pair vector
// streams in ⌈|V_S|/chunk⌉ StreamExtChunk frames.
func JoinWireCostChunked(nS, nR, elemLen, extLen, chunk int) WireCost {
	if chunk <= 0 {
		return JoinWireCost(nS, nR, elemLen, extLen)
	}
	qS, qR := StreamChunks(nS, chunk), StreamChunks(nR, chunk)
	return WireCost{
		FramesSent:       1 + (qR + 2),
		FramesRecv:       1 + (qR + 2) + (qS + 2),
		PayloadBytesSent: wire.EncodedHeaderLen + streamedVector(nR, qR, elemLen),
		PayloadBytesRecv: wire.EncodedHeaderLen +
			streamedVector(nR, qR, 2*elemLen) +
			streamedVector(nS, qS, elemLen+wire.ExtLenOverhead+extLen),
	}
}
