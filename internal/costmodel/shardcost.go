package costmodel

import (
	"time"

	"minshare/internal/wire"
)

// Shard-parallel closed forms.
//
// A k-shard run (core.Config.Shards = k) is one outer handshake plus k
// independent sub-protocols, one per hash-partition bucket.  Its census
// is therefore exactly the sum of the per-bucket Section 6.1 censuses
// plus two sharding surcharges, both certified operation-for-operation
// by the core cross-check tests:
//
//   - Partitioning: each party hashes every value once more to route it
//     to its bucket (the partitioner keys on h(v)), so Ch gains
//     |V_S| + |V_R| on top of the per-bucket hashing.
//   - Envelope: the outer handshake carries the extended sharded header
//     (wire.ShardedHeaderLen) in each direction, and every sub-protocol
//     pays its own two sub-headers inside its mux stream.
//
// The censuses below count codec frames, the layer the obs counters
// observe.  The mux's one-byte shard tag per data frame and its credit
// control frames live strictly below that layer and are not part of the
// protocol census (they are bounded by frames + k·⌈frames/window⌉ extra
// bytes, negligible against the codewords).

// sumShards folds a per-bucket census over paired shard size vectors.
// shardS and shardR must have equal length k; entry i holds the bucket
// sizes |V_S,i| and |V_R,i|.
func sumShards(shardS, shardR []int, per func(nS, nR int) OpCounts) OpCounts {
	var total OpCounts
	for i := range shardS {
		o := per(shardS[i], shardR[i])
		total.Ce += o.Ce
		total.Ch += o.Ch
		total.CK += o.CK
		total.SortElems += o.SortElems
	}
	return total
}

// partitionHashes is the Ch surcharge of routing both sets to buckets.
func partitionHashes(shardS, shardR []int) int64 {
	var n int64
	for i := range shardS {
		n += int64(shardS[i] + shardR[i])
	}
	return n
}

// ShardedIntersectionOps returns the exact census of a k-shard
// intersection run: Σ_i IntersectionOps(|V_S,i|, |V_R,i|) plus the
// partition hashes.  Ce is unchanged from the unsharded run — sharding
// redistributes the exponentiations, it does not add any — while Ch
// doubles to 2(|V_S|+|V_R|).
func ShardedIntersectionOps(shardS, shardR []int) OpCounts {
	o := sumShards(shardS, shardR, IntersectionOps)
	o.Ch += partitionHashes(shardS, shardR)
	return o
}

// ShardedIntersectionSizeOps equals ShardedIntersectionOps, mirroring
// the unsharded equivalence.
func ShardedIntersectionSizeOps(shardS, shardR []int) OpCounts {
	return ShardedIntersectionOps(shardS, shardR)
}

// ShardedJoinSizeOps is ShardedIntersectionOps on the per-bucket
// multiset sizes (rows with duplicates), per Section 5.2.  Every copy
// of a value routes to the same bucket, so the buckets are the full
// sub-multisets and partitioning hashes every row.
func ShardedJoinSizeOps(shardS, shardR []int) OpCounts {
	return ShardedIntersectionOps(shardS, shardR)
}

// ShardedJoinOps returns the exact census of a k-shard equijoin:
// Σ_i JoinOps(|V_S,i|, |V_R,i|, |V_S,i ∩ V_R,i|) plus the partition
// hashes.  shardI holds the per-bucket intersection sizes.
func ShardedJoinOps(shardS, shardR, shardI []int) OpCounts {
	var total OpCounts
	for i := range shardS {
		o := JoinOps(shardS[i], shardR[i], shardI[i])
		total.Ce += o.Ce
		total.Ch += o.Ch
		total.CK += o.CK
		total.SortElems += o.SortElems
	}
	total.Ch += partitionHashes(shardS, shardR)
	return total
}

// ShardedKeyGens returns the commutative key draws of a k-shard run per
// party: each sub-session draws its own keys, so the receiver and the
// intersection-family sender draw k each, and the equijoin sender 2k.
func ShardedKeyGens(k int, perShard int) int64 { return int64(k) * int64(perShard) }

// Plus adds another census to w componentwise (frames and payload bytes;
// the derived on-wire totals follow).
func (w WireCost) Plus(o WireCost) WireCost {
	w.FramesSent += o.FramesSent
	w.FramesRecv += o.FramesRecv
	w.PayloadBytesSent += o.PayloadBytesSent
	w.PayloadBytesRecv += o.PayloadBytesRecv
	return w
}

// ShardedOuterWireCost is the coordinator's own envelope: one extended
// sharded handshake header in each direction and nothing else — after
// the outer handshake, every frame belongs to some sub-session.
// outerHeaderLen is wire.ShardedHeaderLen for the negotiated backend.
func ShardedOuterWireCost(outerHeaderLen int64) WireCost {
	return WireCost{
		FramesSent:       1,
		FramesRecv:       1,
		PayloadBytesSent: outerHeaderLen,
		PayloadBytesRecv: outerHeaderLen,
	}
}

// ShardedIntersectionWireCost returns the exact frame/byte census of a
// k-shard intersection run from R's endpoint: the outer envelope plus
// one full per-bucket census per shard (each sub-session exchanges its
// own classic headers inside its mux stream).  chunk <= 0 runs the
// sub-protocols in legacy one-shot framing.
func ShardedIntersectionWireCost(shardS, shardR []int, elemLen, chunk int) WireCost {
	w := ShardedOuterWireCost(wire.ShardedHeaderLen(0, len(shardS)))
	for i := range shardS {
		w = w.Plus(IntersectionWireCostChunked(shardS[i], shardR[i], elemLen, chunk))
	}
	return w
}

// ShardedJoinWireCost is the equijoin analogue of
// ShardedIntersectionWireCost.
func ShardedJoinWireCost(shardS, shardR []int, elemLen, extLen, chunk int) WireCost {
	w := ShardedOuterWireCost(wire.ShardedHeaderLen(0, len(shardS)))
	for i := range shardS {
		w = w.Plus(JoinWireCostChunked(shardS[i], shardR[i], elemLen, extLen, chunk))
	}
	return w
}

// ---------------------------------------------------------------------
// Shard-parallel wall-clock model
// ---------------------------------------------------------------------

// PipelinedWall models the wall clock of k equal work slices flowing
// through a two-stage pipeline (compute against communication): the
// slower stage runs continuously once filled, and the faster stage adds
// only its first slice —
//
//	T(k) = (k−1)/k · max(Tc, Tm) + (Tc + Tm)/k
//
// which is Tc + Tm at k = 1 and tends to max(Tc, Tm) as k grows.  This
// is the mechanism by which sharding buys wall-clock time even on one
// processor: sub-protocols overlap their exponentiation with siblings'
// link time.
func PipelinedWall(compute, comm time.Duration, k int) time.Duration {
	if k <= 1 {
		return compute + comm
	}
	mx := compute
	if comm > mx {
		mx = comm
	}
	return time.Duration((int64(k-1)*int64(mx) + int64(compute) + int64(comm)) / int64(k))
}

// ShardedWallEstimate projects the wall clock of a k-shard run with p
// processors: the bulk exponentiation work divides across min(k, p)
// concurrent sub-sessions (a shard is the unit of compute parallelism),
// and the slices then pipeline against the link per PipelinedWall.
// With k = 1 or p = 0 this degrades to the sequential compute + comm.
func ShardedWallEstimate(compute, comm time.Duration, k, p int) time.Duration {
	if k < 1 {
		k = 1
	}
	workers := k
	if p >= 1 && p < workers {
		workers = p
	}
	if p < 1 {
		workers = 1
	}
	return PipelinedWall(compute/time.Duration(workers), comm, k)
}
