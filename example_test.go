package minshare_test

import (
	"context"
	"fmt"

	"minshare"
)

// The simplest possible use: two in-memory sets, full protocol run over
// an internal pipe, receiver's view printed.
func ExampleIntersect() {
	cfg := minshare.Config{} // paper defaults: 1024-bit group
	g, _ := minshare.GroupBits(512)
	cfg.Group = g // smaller group keeps the example fast

	mine := [][]byte{[]byte("ann"), []byte("bob"), []byte("carol")}
	theirs := [][]byte{[]byte("bob"), []byte("dave")}

	res, senderInfo, err := minshare.Intersect(context.Background(), cfg, mine, theirs)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, v := range res.Values {
		fmt.Printf("shared: %s\n", v)
	}
	fmt.Printf("receiver learned |V_S| = %d; sender learned |V_R| = %d\n",
		res.SenderSetSize, senderInfo.ReceiverSetSize)
	// Output:
	// shared: bob
	// receiver learned |V_S| = 2; sender learned |V_R| = 3
}

// Equijoin: the receiver learns, for each shared value, the sender's
// ext(v) payload — and nothing about values outside the intersection.
func ExampleJoin() {
	cfg := minshare.Config{}
	g, _ := minshare.GroupBits(512)
	cfg.Group = g

	mine := [][]byte{[]byte("ann"), []byte("bob")}
	records := []minshare.JoinRecord{
		{Value: []byte("bob"), Ext: []byte("bob's row")},
		{Value: []byte("dave"), Ext: []byte("dave's row")},
	}

	res, _, err := minshare.Join(context.Background(), cfg, mine, records)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, m := range res.Matches {
		fmt.Printf("%s -> %s\n", m.Value, m.Ext)
	}
	// Output:
	// bob -> bob's row
}

// The role-level API for networked deployments: each party drives its
// half of the protocol over its own Conn.  Here the two roles run in
// one process over a Pipe; swap in Dial on one side and a listener on
// the other for a real deployment (or use party.Server/party.Client,
// which add policy enforcement and retry on top of these functions).
func ExampleIntersectionReceiver() {
	cfg := minshare.Config{}
	g, _ := minshare.GroupBits(512)
	cfg.Group = g

	connR, connS := minshare.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := minshare.IntersectionSender(context.Background(), cfg, connS,
			[][]byte{[]byte("bob"), []byte("dave")}); err != nil {
			fmt.Println("sender error:", err)
		}
	}()

	res, err := minshare.IntersectionReceiver(context.Background(), cfg, connR,
		[][]byte{[]byte("ann"), []byte("bob"), []byte("carol")})
	<-done
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, v := range res.Values {
		fmt.Printf("shared: %s\n", v)
	}
	// Output:
	// shared: bob
}

// Multiset join cardinality: the receiver learns the join size and the
// duplicate distribution, exactly as Section 5.2 characterizes.
func ExampleJoinSize() {
	cfg := minshare.Config{}
	g, _ := minshare.GroupBits(512)
	cfg.Group = g

	// T_R.A has ann twice; T_S.A has ann once and bob three times.
	rCol := [][]byte{[]byte("ann"), []byte("ann"), []byte("bob")}
	sCol := [][]byte{[]byte("ann"), []byte("bob"), []byte("bob"), []byte("bob")}

	res, _, err := minshare.JoinSize(context.Background(), cfg, rCol, sCol)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("|T_S ⋈ T_R| = %d\n", res.JoinSize) // ann: 2×1, bob: 1×3
	// Output:
	// |T_S ⋈ T_R| = 5
}
