// Networked private equijoin: two "enterprises" on separate TCP
// endpoints join their relational tables on a shared key without
// revealing non-matching rows.
//
// The sender enterprise holds an orders table; the receiver enterprise
// holds its customer list.  The receiver learns, for exactly the shared
// customers, all of the sender's order rows (the paper's ext(v)); the
// sender learns only how many customers the receiver queried.
//
//	go run ./examples/netjoin
//
// Both parties run inside this process for convenience, but they talk
// over a real TCP socket on localhost — the same code works across
// machines with cmd/psi.
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"minshare"
	"minshare/internal/reldb"
	"minshare/internal/transport"
)

func main() {
	cfg := minshare.Config{}
	if g, err := minshare.GroupBits(512); err == nil {
		cfg.Group = g // smaller group keeps the demo snappy
	}

	// --- the sender enterprise's private database ---
	orders := reldb.NewTable("orders", reldb.MustSchema(
		reldb.Column{Name: "customer", Type: reldb.TypeString},
		reldb.Column{Name: "item", Type: reldb.TypeString},
		reldb.Column{Name: "amount", Type: reldb.TypeInt},
	))
	orders.MustInsert(reldb.String("ann"), reldb.String("widget"), reldb.Int(120))
	orders.MustInsert(reldb.String("ann"), reldb.String("sprocket"), reldb.Int(75))
	orders.MustInsert(reldb.String("bob"), reldb.String("gizmo"), reldb.Int(300))
	orders.MustInsert(reldb.String("eve"), reldb.String("contraband"), reldb.Int(9999))

	// --- the receiver enterprise's private customer list ---
	customers := [][]byte{
		reldb.String("ann").Encode(),
		reldb.String("bob").Encode(),
		reldb.String("carol").Encode(),
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	addr := ln.Addr().String()
	fmt.Printf("sender enterprise listening on %s\n", addr)

	// Sender: accept one connection and answer the equijoin.
	senderErr := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			senderErr <- err
			return
		}
		conn := transport.NewTCP(nc)
		defer func() { _ = conn.Close() }()

		values, exts, err := orders.ExtPayloads("customer")
		if err != nil {
			senderErr <- err
			return
		}
		recs := make([]minshare.JoinRecord, len(values))
		for i := range values {
			recs[i] = minshare.JoinRecord{Value: values[i], Ext: exts[i]}
		}
		info, err := minshare.EquijoinSender(context.Background(), cfg, conn, recs)
		if err == nil {
			fmt.Printf("sender learned only: receiver queried %d customers\n", info.ReceiverSetSize)
		}
		senderErr <- err
	}()

	// Receiver: dial and run the join.
	conn, err := minshare.Dial(context.Background(), addr)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	res, err := minshare.EquijoinReceiver(context.Background(), cfg, conn, customers)
	if err != nil {
		log.Fatal(err)
	}
	if err := <-senderErr; err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nreceiver's join result (%d matched customers, sender has %d):\n",
		len(res.Matches), res.SenderSetSize)
	for _, m := range res.Matches {
		name, err := reldb.DecodeValue(m.Value)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := reldb.DecodeRows(m.Ext, orders.Schema().NumColumns())
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range rows {
			fmt.Printf("  %-6s ordered %-10s for %4d\n",
				name, row[1].AsString(), row[2].AsInt())
		}
	}
	fmt.Println("\n(eve's order and carol's membership were never revealed)")
}
