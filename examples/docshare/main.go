// Selective document sharing (Application 1 of the paper, §1.1/§6.2.1).
//
// Enterprise R is shopping for technology; enterprise S holds unpublished
// intellectual property.  Neither wants to reveal its full corpus.  Each
// document is reduced to its significant words by TF·IDF; the parties
// then run one private intersection-size protocol per document pair and
// R keeps the pairs whose similarity f = |d_R ∩ d_S| / (|d_R|+|d_S|)
// clears the threshold τ.
//
//	go run ./examples/docshare
package main

import (
	"context"
	"fmt"
	"log"

	"minshare/internal/core"
	"minshare/internal/docshare"
	"minshare/internal/group"
	"minshare/internal/transport"
)

var shoppingList = map[string]string{
	"turbine-cooling": `We seek licensable techniques for turbine blade cooling:
		internal cooling ducts, film cooling, thermal barrier coatings for
		high temperature alloy fatigue life extension in gas turbine engines.`,
	"database-privacy": `Interested in cryptographic protocols for privacy
		preserving database joins, secure multiparty computation over
		relational data and commutative encryption methods.`,
	"pasta-machines": `Industrial pasta extrusion machinery with bronze dies,
		drying tunnels and humidity control for artisanal pasta production.`,
}

var patentPortfolio = map[string]string{
	"us-0001": `A gas turbine engine blade with serpentine internal cooling
		ducts and film cooling holes; thermal barrier coatings reduce alloy
		fatigue at high temperature, extending turbine life.`,
	"us-0002": `Method for privacy preserving equijoin across two relational
		databases using commutative encryption; the protocols reveal only
		the join result, enabling secure multiparty database computation.`,
	"us-0003": `Beach volleyball net tensioning system with sand anchors.`,
}

func main() {
	// Preprocess both corpora to significant words (top 12 by TF·IDF).
	docsR := prepare(shoppingList)
	docsS := prepare(patentPortfolio)

	cfg := core.Config{Group: group.MustBuiltin(group.Bits512)}
	const tau = 0.05

	connR, connS := transport.Pipe()
	defer func() { _ = connR.Close() }()
	ctx := context.Background()

	errCh := make(chan error, 1)
	go func() { errCh <- docshare.MatchSender(ctx, cfg, connS, docsS) }()
	matches, err := docshare.MatchReceiver(ctx, cfg, connR, docsR, docshare.DiceLike, tau)
	if err != nil {
		log.Fatal(err)
	}
	if err := <-errCh; err != nil {
		log.Fatal(err)
	}

	fmt.Printf("document pairs with similarity > %.2f (receiver's view):\n", tau)
	for _, m := range matches {
		fmt.Printf("  shopping item %q ~ portfolio document #%d  (|∩|=%d, |d_R|=%d, |d_S|=%d, f=%.3f)\n",
			m.RID, m.SIndex, m.Intersection, m.SizeR, m.SizeS, m.Score)
	}
	fmt.Println("\nnon-matching documents were never revealed; the parties can now")
	fmt.Println("negotiate licensing for just the matched technologies.")
}

func prepare(corpus map[string]string) []docshare.Document {
	ids := make([]string, 0, len(corpus))
	for id := range corpus {
		ids = append(ids, id)
	}
	// Deterministic order.
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	tokenized := make([][]string, len(ids))
	for i, id := range ids {
		tokenized[i] = docshare.Tokenize(corpus[id])
	}
	significant := docshare.SignificantWords(tokenized, 12)
	docs := make([]docshare.Document, len(ids))
	for i, id := range ids {
		docs[i] = docshare.Document{ID: id, Words: significant[i]}
	}
	return docs
}
