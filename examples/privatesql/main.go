// Private SQL: run the paper's own medical-research query — as literal
// SQL — across two private databases.
//
// Section 1.1 of the paper presents the query
//
//	select pattern, reaction, count(*)
//	from T_R, T_S
//	where T_R.personid = T_S.personid and T_S.drug = "true"
//	group by T_R.pattern, T_S.reaction
//
// and asks that "the researcher should get to know the counts and
// nothing else".  This example parses that query, plans it onto the
// minimal-sharing protocols (third-party intersection sizes, Figure 2)
// and executes it; it then runs two more query shapes (SELECT * and
// SELECT COUNT(*)) over a business schema, each compiled to a different
// protocol.
//
//	go run ./examples/privatesql
package main

import (
	"context"
	"fmt"
	"log"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/query"
	"minshare/internal/reldb"
)

func main() {
	cfg := core.Config{Group: group.MustBuiltin(group.Bits512)}
	ctx := context.Background()

	// --- the paper's medical query ---
	tR, tS := reldb.GenPeopleTables(400, 0.3, 0.5, 0.35, 99)
	sql := `select t_r.pattern, t_s.reaction, count(*)
	        from t_r, t_s
	        where t_r.personid = t_s.personid and t_s.drug = true
	        group by t_r.pattern, t_s.reaction`
	q, err := query.Parse(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query:\n%s\nplan: %v\n\n", sql, query.PlanFor(q))

	res, err := query.Execute(ctx, cfg, cfg, cfg, q, tR, tS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pattern  reaction  count")
	for _, g := range res.Groups {
		fmt.Printf("%-8v %-9v %5d\n", g.Values[0], g.Values[1], g.Count)
	}

	// --- SELECT * compiles to the private equijoin ---
	customers := reldb.NewTable("customers", reldb.MustSchema(
		reldb.Column{Name: "name", Type: reldb.TypeString},
		reldb.Column{Name: "vip", Type: reldb.TypeBool},
	))
	customers.MustInsert(reldb.String("ann"), reldb.Bool(true))
	customers.MustInsert(reldb.String("bob"), reldb.Bool(false))
	orders := reldb.NewTable("orders", reldb.MustSchema(
		reldb.Column{Name: "cust", Type: reldb.TypeString},
		reldb.Column{Name: "amount", Type: reldb.TypeInt},
	))
	orders.MustInsert(reldb.String("ann"), reldb.Int(250))
	orders.MustInsert(reldb.String("eve"), reldb.Int(9000))

	q2, err := query.Parse(`select * from customers, orders where customers.name = orders.cust and customers.vip = true`)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := query.Execute(ctx, cfg, cfg, cfg, q2, customers, orders)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSELECT * (plan: %v) returned %d joined rows:\n", query.PlanFor(q2), res2.Rows.NumRows())
	for _, row := range res2.Rows.Rows() {
		fmt.Printf("  %v\n", row)
	}

	// --- SELECT COUNT(*) compiles to the equijoin-size protocol ---
	q3, err := query.Parse(`select count(*) from customers, orders where customers.name = orders.cust`)
	if err != nil {
		log.Fatal(err)
	}
	res3, err := query.Execute(ctx, cfg, cfg, cfg, q3, customers, orders)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSELECT COUNT(*) (plan: %v) = %d\n", query.PlanFor(q3), res3.Count)
}
