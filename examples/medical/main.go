// Medical research (Application 2 of the paper, §1.1/§6.2.2, Figure 2).
//
// A researcher T wants the contingency table of
//
//	select pattern, reaction, count(*)
//	from T_R, T_S
//	where T_R.personid = T_S.personid and T_S.drug = true
//	group by T_R.pattern, T_S.reaction
//
// where T_R (DNA pattern presence) and T_S (drug intake and reactions)
// belong to two enterprises that refuse to reveal anything about any
// individual.  Following Figure 2 of the paper, the enterprises run four
// third-party intersection-size protocols and only the four counts reach
// the researcher.
//
//	go run ./examples/medical
package main

import (
	"context"
	"fmt"
	"log"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/medical"
	"minshare/internal/reldb"
)

func main() {
	// Synthetic population: 2000 people, 30% carry the DNA pattern, 50%
	// took drug G, 40% of carriers who took it react adversely vs 10%
	// of non-carriers (the signal the researcher is hunting for).
	tR, tS := genCorrelated(2000, 42)

	cfg := core.Config{Group: group.MustBuiltin(group.Bits512)}
	counts, err := medical.RunStudy(context.Background(), cfg, cfg, cfg, tR, tS)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("researcher's private contingency table (drug takers only):")
	fmt.Printf("                     reaction   no reaction\n")
	fmt.Printf("  DNA pattern        %8d   %11d\n", counts.PatternReaction, counts.PatternNoReaction)
	fmt.Printf("  no DNA pattern     %8d   %11d\n", counts.NoPatternReaction, counts.NoPatternNoReaction)

	pr := rate(counts.PatternReaction, counts.PatternReaction+counts.PatternNoReaction)
	nr := rate(counts.NoPatternReaction, counts.NoPatternReaction+counts.NoPatternNoReaction)
	fmt.Printf("\nadverse-reaction rate with pattern:    %.1f%%\n", pr*100)
	fmt.Printf("adverse-reaction rate without pattern: %.1f%%\n", nr*100)
	fmt.Println("\nneither enterprise learned anything about any individual;")
	fmt.Println("the researcher learned only these four counts (verified against")

	want, err := medical.PlaintextCounts(tR, tS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the plaintext evaluation: match = %v).\n", *counts == *want)
}

func rate(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// genCorrelated builds tables where the DNA pattern raises the adverse
// reaction rate — unlike reldb.GenPeopleTables, reaction here depends on
// pattern, which is the hypothesis the researcher wants to validate.
func genCorrelated(n int, seed int64) (tR, tS *reldb.Table) {
	tR = reldb.NewTable("T_R", reldb.MustSchema(
		reldb.Column{Name: "personid", Type: reldb.TypeInt},
		reldb.Column{Name: "pattern", Type: reldb.TypeBool},
	))
	tS = reldb.NewTable("T_S", reldb.MustSchema(
		reldb.Column{Name: "personid", Type: reldb.TypeInt},
		reldb.Column{Name: "drug", Type: reldb.TypeBool},
		reldb.Column{Name: "reaction", Type: reldb.TypeBool},
	))
	rng := newLCG(seed)
	for id := 0; id < n; id++ {
		pattern := rng.float() < 0.30
		drug := rng.float() < 0.50
		reactRate := 0.10
		if pattern {
			reactRate = 0.40
		}
		reaction := drug && rng.float() < reactRate
		tR.MustInsert(reldb.Int(int64(id)), reldb.Bool(pattern))
		tS.MustInsert(reldb.Int(int64(id)), reldb.Bool(drug), reldb.Bool(reaction))
	}
	return tR, tS
}

// lcg is a tiny deterministic generator so the example's output is
// stable across runs without importing math/rand.
type lcg struct{ state uint64 }

func newLCG(seed int64) *lcg { return &lcg{state: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg) float() float64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return float64(l.state>>11) / float64(1<<53)
}
