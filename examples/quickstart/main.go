// Quickstart: compute a private set intersection in-process.
//
// Two parties hold customer email lists; the receiver learns exactly the
// shared customers and the sender's list size — nothing else — and the
// sender learns only the receiver's list size.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"minshare"
)

func main() {
	receiverList := [][]byte{
		[]byte("ann@example.com"),
		[]byte("bob@example.com"),
		[]byte("carol@example.com"),
		[]byte("dave@example.com"),
	}
	senderList := [][]byte{
		[]byte("bob@example.com"),
		[]byte("erin@example.com"),
		[]byte("carol@example.com"),
	}

	// The zero Config selects the paper's parameters: a 1024-bit
	// safe-prime group, Pohlig-Hellman commutative encryption and a
	// SHA-256 random-oracle hash.
	res, senderInfo, err := minshare.Intersect(context.Background(), minshare.Config{},
		receiverList, senderList)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("shared customers (receiver's view):")
	for _, v := range res.Values {
		fmt.Printf("  %s\n", v)
	}
	fmt.Printf("receiver also learned: |V_S| = %d\n", res.SenderSetSize)
	fmt.Printf("sender learned only:   |V_R| = %d\n", senderInfo.ReceiverSetSize)
}
