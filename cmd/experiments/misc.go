package main

import (
	"context"
	"fmt"
	"time"

	"minshare/internal/core"
	"minshare/internal/leakage"
	"minshare/internal/oracle"
	"minshare/internal/transport"
	"minshare/internal/yao"
)

// runE8 reproduces the Section 3.2.2 collision computation: with
// 1024-bit hash values (half being quadratic residues) and n = 10^6,
// Pr[collision] ≈ 10^-295.
func runE8(env *environment) error {
	fmt.Println("Pr[hash collision] ≈ 1 − exp(−n(n−1)/2N), N = 2^(k−1) quadratic residues:")
	fmt.Printf("%-12s %6s %14s\n", "n", "k", "log10 Pr")
	for _, tc := range []struct {
		n    uint64
		bits int
	}{
		{1_000_000, 1024}, // the paper's example: ≈ -295
		{1_000_000, 512},
		{1_000_000_000, 1024},
		{1000, 64},
	} {
		_, l10 := oracle.CollisionProbability(tc.n, tc.bits)
		note := ""
		if tc.n == 1_000_000 && tc.bits == 1024 {
			note = "   (paper: 10^-295)"
		}
		fmt.Printf("%-12d %6d %14.1f%s\n", tc.n, tc.bits, l10, note)
	}

	// Empirical cross-check on a tiny domain where collisions are
	// expected: exact birthday formula vs closed form.
	approx, _ := oracle.CollisionProbability(100, 16)
	exact, err := oracle.ExactCollisionProbability(100, 1<<15)
	if err != nil {
		return err
	}
	fmt.Printf("cross-check (n=100, 16-bit domain): closed form %.4f vs exact %.4f\n", approx, exact)
	return nil
}

// runE9 runs the REAL garbled-circuit PSI (packages circuit/garble/ot/
// yao) against our intersection protocol at small n, measuring wall time
// and wire bytes — the empirical validation of Appendix A's conclusion.
func runE9(env *environment) error {
	sizes := []int{4, 8, 16}
	if env.quick {
		sizes = []int{4, 8}
	}
	const w = 16
	fmt.Printf("n (=|V_S|=|V_R|), values of %d bits, half shared:\n", w)
	fmt.Printf("%4s  %14s %14s   %14s %14s   %8s\n",
		"n", "yao bytes", "yao wall", "ours bytes", "ours wall", "ratio")

	for _, n := range sizes {
		sVals := make([]uint64, n)
		rVals := make([]uint64, n)
		for i := 0; i < n; i++ {
			sVals[i] = uint64(i)
			if i < n/2 {
				rVals[i] = uint64(i) // shared
			} else {
				rVals[i] = uint64(1000 + i)
			}
		}

		// Yao baseline.
		ctx := context.Background()
		connG, connE := transport.Pipe()
		meter := transport.NewMeter(connE)
		start := time.Now()
		ch := make(chan error, 1)
		go func() {
			ch <- yao.RunGarbler(ctx, yao.Config{Group: env.group, Width: w}, connG, sVals)
		}()
		res, err := yao.RunEvaluator(ctx, yao.Config{Group: env.group, Width: w}, meter, rVals)
		if err != nil {
			return fmt.Errorf("yao evaluator: %w", err)
		}
		if err := <-ch; err != nil {
			return fmt.Errorf("yao garbler: %w", err)
		}
		yaoWall := time.Since(start)
		yaoBytes := meter.TotalBytes()
		_ = connG.Close()

		members := 0
		for _, m := range res.Members {
			if m {
				members++
			}
		}
		if members != n/2 {
			return fmt.Errorf("yao PSI found %d members, want %d", members, n/2)
		}

		// Our protocol on the same sets.
		vS := make([][]byte, n)
		vR := make([][]byte, n)
		for i := 0; i < n; i++ {
			vS[i] = []byte(fmt.Sprintf("%016x", sVals[i]))
			vR[i] = []byte(fmt.Sprintf("%016x", rVals[i]))
		}
		cfg := core.Config{Group: env.group, Parallelism: env.usePar}
		start = time.Now()
		oursMeter, err := runMeteredReceiver(
			func(ctx context.Context, conn transport.Conn) error {
				ires, err := core.IntersectionReceiver(ctx, cfg, conn, vR)
				if err != nil {
					return err
				}
				if len(ires.Values) != n/2 {
					return fmt.Errorf("ours found %d members, want %d", len(ires.Values), n/2)
				}
				return nil
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionSender(ctx, cfg, conn, vS)
				return err
			})
		if err != nil {
			return err
		}
		oursWall := time.Since(start)
		oursBytes := oursMeter.TotalBytes()

		fmt.Printf("%4d  %14d %14v   %14d %14v   %7.1fx\n",
			n, yaoBytes, yaoWall.Round(time.Millisecond),
			oursBytes, oursWall.Round(time.Millisecond),
			float64(yaoBytes)/float64(oursBytes))
	}
	fmt.Println("(\"ratio\" is yao/ours wire bytes: the crossover the paper predicts — circuit traffic")
	fmt.Println(" grows with n·n·w gate tables while ours grows with 3n·k — is already visible at tiny n)")
	return nil
}

// runE10 demonstrates the Section 5.2 leakage characterization: the
// matrix |V_R(d) ∩ V_S(d')| reconstructed from a real equijoin-size
// transcript equals the plaintext matrix, at both of the paper's
// extremes and in between.
func runE10(env *environment) error {
	regimes := []struct {
		name   string
		vR, vS [][]byte
	}{
		{
			name: "uniform duplicates (paper: R learns only |V_R ∩ V_S|)",
			vR:   multiset(map[string]int{"a": 1, "b": 1, "c": 1, "d": 1}),
			vS:   multiset(map[string]int{"a": 1, "b": 1, "x": 1}),
		},
		{
			name: "all-distinct duplicates (paper: R learns V_R ∩ V_S exactly)",
			vR:   multiset(map[string]int{"a": 1, "b": 2, "c": 3, "d": 4}),
			vS:   multiset(map[string]int{"a": 5, "c": 6, "z": 1}),
		},
		{
			name: "mixed",
			vR:   multiset(map[string]int{"a": 2, "b": 2, "c": 1, "d": 3}),
			vS:   multiset(map[string]int{"a": 2, "b": 1, "d": 3, "y": 2}),
		},
	}
	cfg := core.Config{Group: env.group, Parallelism: env.usePar}
	for _, reg := range regimes {
		fmt.Printf("-- %s\n", reg.name)
		var res *core.JoinSizeResult
		err := runProtocolPair(
			func(ctx context.Context, conn transport.Conn) error {
				var err error
				res, err = core.EquijoinSizeReceiver(ctx, cfg, conn, reg.vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinSizeSender(ctx, cfg, conn, reg.vS)
				return err
			})
		if err != nil {
			return err
		}
		m := leakage.PartitionOverlapMatrix(reg.vR, reg.vS)
		fmt.Printf("protocol join size: %d; matrix join size: %d; intersection: %d\n",
			res.JoinSize, m.JoinSize(), m.IntersectionSize())
		fmt.Print(m)
		inferences := leakage.InferMembers(reg.vR, m)
		if len(inferences) == 0 {
			fmt.Println("value-level inferences: none (membership stays ambiguous)")
		} else {
			for _, inf := range inferences {
				verb := "∉ V_S"
				if inf.InSender {
					verb = "∈ V_S"
					if inf.SenderDuplicates > 0 {
						verb += fmt.Sprintf(" with %d duplicates", inf.SenderDuplicates)
					}
				}
				fmt.Printf("value-level inference: %q %s\n", inf.Value, verb)
			}
		}
	}
	return nil
}

func multiset(spec map[string]int) [][]byte {
	var out [][]byte
	// Deterministic order for stable output.
	keys := make([]string, 0, len(spec))
	for k := range spec {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		for i := 0; i < spec[k]; i++ {
			out = append(out, []byte(k))
		}
	}
	return out
}
