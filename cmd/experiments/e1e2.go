package main

import (
	"context"
	"fmt"
	"time"

	"minshare/internal/commutative"
	"minshare/internal/core"
	"minshare/internal/costmodel"
	"minshare/internal/kenc"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

func sweepSizes(quick bool) []int {
	if quick {
		return []int{16, 32, 64}
	}
	return []int{32, 64, 128, 256}
}

// runE1 verifies the Section 6.1 computation formulas against
// instrumented protocol runs: the C_e census must match EXACTLY.
func runE1(env *environment) error {
	fmt.Println("protocol      |V_S|  |V_R|  Ce(formula)  Ce(measured)  match  wall")
	for _, n := range sweepSizes(env.quick) {
		nS, nR, shared := n, n, n/3
		vR, vS := overlapping(nR, nS, shared)

		// Intersection.
		countR := commutative.NewCounting(commutative.NewPowerFn(env.group))
		countS := commutative.NewCounting(commutative.NewPowerFn(env.group))
		cfgR := core.Config{Group: env.group, Scheme: countR, Parallelism: env.usePar}
		cfgS := core.Config{Group: env.group, Scheme: countS, Parallelism: env.usePar}

		start := time.Now()
		err := runProtocolPair(
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionReceiver(ctx, cfgR, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionSender(ctx, cfgS, conn, vS)
				return err
			})
		if err != nil {
			return err
		}
		wall := time.Since(start)
		formula := costmodel.IntersectionOps(nS, nR).Ce
		measured := countR.Ops() + countS.Ops()
		fmt.Printf("intersection  %5d  %5d  %11d  %12d  %5v  %v\n",
			nS, nR, formula, measured, formula == measured, wall.Round(time.Millisecond))

		// Equijoin.
		countR.Reset()
		countS.Reset()
		recs := make([]core.JoinRecord, len(vS))
		for i, v := range vS {
			recs[i] = core.JoinRecord{Value: v, Ext: []byte("ext")}
		}
		start = time.Now()
		err = runProtocolPair(
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinReceiver(ctx, cfgR, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinSender(ctx, cfgS, conn, recs)
				return err
			})
		if err != nil {
			return err
		}
		wall = time.Since(start)
		formula = costmodel.JoinOps(nS, nR, shared).Ce
		measured = countR.Ops() + countS.Ops()
		fmt.Printf("equijoin      %5d  %5d  %11d  %12d  %5v  %v\n",
			nS, nR, formula, measured, formula == measured, wall.Round(time.Millisecond))
	}
	fmt.Println("paper formulas: intersection ≈ 2Ce(|V_S|+|V_R|), join ≈ 2Ce|V_S|+5Ce|V_R|")
	return nil
}

// runE2 verifies the Section 6.1 communication formulas against metered
// wire traffic (element payloads; fixed framing overhead reported
// separately).
func runE2(env *environment) error {
	k := env.group.Bits()
	elem := int64(env.group.ElementLen())
	const headerLen = wire.EncodedHeaderLen
	const vecOverhead = wire.VectorOverhead

	fmt.Printf("k = %d bits per codeword\n", k)
	fmt.Println("protocol      |V_S|  |V_R|  bits(formula)  bits(measured)  match")
	for _, n := range sweepSizes(env.quick) {
		nS, nR, shared := n+n/2, n, n/4
		vR, vS := overlapping(nR, nS, shared)
		cfg := core.Config{Group: env.group, Parallelism: env.usePar}

		// Intersection.
		meter, err := runMeteredReceiver(
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionReceiver(ctx, cfg, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionSender(ctx, cfg, conn, vS)
				return err
			})
		if err != nil {
			return err
		}
		formulaBits := int64(costmodel.IntersectionCommBits(nS, nR, k))
		measuredBits := (meter.TotalBytes() - 2*headerLen - 3*vecOverhead) * 8
		fmt.Printf("intersection  %5d  %5d  %13d  %14d  %5v\n",
			nS, nR, formulaBits, measuredBits, formulaBits == measuredBits)

		// Equijoin with fixed 32-byte ext payloads.
		recs := make([]core.JoinRecord, len(vS))
		for i, v := range vS {
			ext := make([]byte, 32)
			copy(ext, v)
			recs[i] = core.JoinRecord{Value: v, Ext: ext}
		}
		cfgN := cfg
		kPrime := 8 * kenc.NewHybrid(env.group).CiphertextLen(32)
		meter, err = runMeteredReceiver(
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinReceiver(ctx, cfgN, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinSender(ctx, cfgN, conn, recs)
				return err
			})
		if err != nil {
			return err
		}
		formulaBits = int64(costmodel.JoinCommBits(nS, nR, k, kPrime))
		measuredBits = (meter.TotalBytes() - 2*headerLen - 3*vecOverhead - int64(nS)*wire.ExtLenOverhead) * 8
		fmt.Printf("equijoin      %5d  %5d  %13d  %14d  %5v\n",
			nS, nR, formulaBits, measuredBits, formulaBits == measuredBits)
		_ = elem
	}
	fmt.Println("paper formulas: intersection (|V_S|+2|V_R|)k bits, join (|V_S|+3|V_R|)k + |V_S|k' bits")
	return nil
}

// runProtocolPair executes both ends of a protocol over a pipe.
func runProtocolPair(recvFn, sendFn func(ctx context.Context, conn transport.Conn) error) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer func() { _ = connR.Close() }()
	ch := make(chan error, 1)
	go func() {
		err := sendFn(ctx, connS)
		if err != nil {
			connS.Close() // lint:ignore errclose closing is the failure signal to the receiver; the root cause travels on ch
		}
		ch <- err
	}()
	if err := recvFn(ctx, connR); err != nil {
		connR.Close() // lint:ignore errclose closing is the failure signal to the sender goroutine; the recv error carries the root cause
		<-ch
		return fmt.Errorf("receiver: %w", err)
	}
	if err := <-ch; err != nil {
		return fmt.Errorf("sender: %w", err)
	}
	return nil
}

// runMeteredReceiver is runProtocolPair with a meter on the receiver end.
func runMeteredReceiver(recvFn, sendFn func(ctx context.Context, conn transport.Conn) error) (*transport.Meter, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer func() { _ = connR.Close() }()
	meter := transport.NewMeter(connR)
	ch := make(chan error, 1)
	go func() {
		err := sendFn(ctx, connS)
		if err != nil {
			connS.Close() // lint:ignore errclose closing is the failure signal to the receiver; the root cause travels on ch
		}
		ch <- err
	}()
	if err := recvFn(ctx, meter); err != nil {
		connR.Close() // lint:ignore errclose closing is the failure signal to the sender goroutine; the recv error carries the root cause
		<-ch
		return nil, fmt.Errorf("receiver: %w", err)
	}
	if err := <-ch; err != nil {
		return nil, fmt.Errorf("sender: %w", err)
	}
	return meter, nil
}
