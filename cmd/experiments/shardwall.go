package main

import (
	"fmt"
	"time"

	"minshare/internal/costmodel"
	"minshare/internal/leakage"
	"minshare/internal/transport"
)

// runE12 projects the wall-clock effect of shard-parallel execution
// (core.Config.Shards = k) from the certified closed forms: the compute
// term is the Section 6.1 C_e census at the host-calibrated per-op cost
// (the sharded census is proven equal to the unsharded one in
// internal/costmodel's cross-check tests), the comm term is the wire
// census over the link, and ShardedWallEstimate pipelines the two with
// compute divided across min(k, P) processors.  This is the table
// BENCH_PR8.json's projection rows come from; the measured side at this
// host's processor count is BenchmarkIntersectionSharded.
func runE12(env *environment) error {
	n := 1_000_000
	if env.quick {
		n = 10_000
	}
	links := []transport.LinkModel{
		transport.T1,
		{BitsPerSecond: 100e6, Name: "LAN"},
	}
	const k = 8

	ops := costmodel.IntersectionOps(n, n)
	compute := ops.Time(env.costs, 1)
	bits := costmodel.IntersectionCommBits(n, n, env.group.Bits())

	fmt.Printf("intersection |V| = %d, group %d bits, k = %d shards\n", n, env.group.Bits(), k)
	fmt.Println("link  P  T_compute  T_comm     sequential  sharded     speedup")
	for _, link := range links {
		comm := time.Duration(bits / link.BitsPerSecond * float64(time.Second))
		seq := compute + comm
		for _, p := range []int{1, 8} {
			wall := costmodel.ShardedWallEstimate(compute, comm, k, p)
			fmt.Printf("%-4s  %d  %-9v  %-9v  %-10v  %-10v  %.2fx\n",
				link.Name, p, compute.Round(time.Second/10), comm.Round(time.Second/10),
				seq.Round(time.Second/10), wall.Round(time.Second/10),
				float64(seq)/float64(wall))
		}
	}

	// The price of sharding is the per-shard size vector each party
	// reveals: quantify it for an honest (near-balanced) split of n.
	sizes := make([]int, k)
	for i := range sizes {
		sizes[i] = n / k
	}
	sizes[0] += n % k
	leak := leakage.ShardSplit(sizes)
	fmt.Printf("leakage: balanced %d-way split of %d values ~ %.1f bits surprisal (support %.1f bits)\n",
		k, n, leak.SurprisalBits, leak.SupportBits)
	return nil
}
