// Command experiments regenerates every quantitative table and figure of
// the paper (see DESIGN.md's experiment index E1-E10):
//
//	E1  §6.1   computation formulas vs instrumented operation counts
//	E2  §6.1   communication formulas vs metered wire bytes
//	E3  §6.2.1 selective document sharing estimate (paper, host, measured)
//	E4  §6.2.2 medical research estimate (paper, host, measured)
//	E5  A.1.2  partitioning-circuit size table
//	E6  A.2    computation comparison table (circuit vs ours)
//	E7  A.2    communication comparison table + the 144-days-vs-0.5-hours claim
//	E8  §3.2.2 hash collision probability
//	E9  ext.   real garbled-circuit PSI vs our protocol, measured at small n
//	E10 §5.2   equijoin-size leakage characterization
//	E11 §6.1   observability cross-check: live obs counters vs cost model
//	E12 ext.   shard-parallel wall-clock projection from the certified forms
//
// Usage:
//
//	experiments -exp all            # everything
//	experiments -exp E5,E7          # a subset
//	experiments -exp E1 -quick      # smaller measured sweeps
//	experiments -group 256          # small group for fast smoke runs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"minshare/internal/costmodel"
	"minshare/internal/group"
)

type experiment struct {
	id    string
	title string
	run   func(env *environment) error
}

type environment struct {
	group   *group.Group
	quick   bool
	costs   costmodel.Costs // host-calibrated
	usePar  int             // parallelism for measured runs
	verbose bool
}

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment ids (E1..E12) or 'all'")
		groupBits = flag.Int("group", 1024, "builtin group size for measured runs")
		quick     = flag.Bool("quick", false, "smaller measured sweeps")
		par       = flag.Int("p", 0, "parallelism for measured runs (0 = all cores)")
	)
	flag.Parse()

	g, err := group.Builtin(group.Size(*groupBits))
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	experiments := []experiment{
		{"E1", "§6.1 computation formulas vs measured operation counts", runE1},
		{"E2", "§6.1 communication formulas vs metered bytes", runE2},
		{"E3", "§6.2.1 selective document sharing", runE3},
		{"E4", "§6.2.2 medical research", runE4},
		{"E5", "Appendix A.1.2 partitioning-circuit sizes", runE5},
		{"E6", "Appendix A.2 computation comparison", runE6},
		{"E7", "Appendix A.2 communication comparison", runE7},
		{"E8", "§3.2.2 hash collision probability", runE8},
		{"E9", "garbled-circuit PSI vs our protocol (measured)", runE9},
		{"E10", "§5.2 equijoin-size leakage", runE10},
		{"E11", "§6.1 observability cross-check: obs counters vs cost model", runE11},
		{"E12", "shard-parallel wall-clock projection (certified closed forms)", runE12},
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for _, e := range experiments {
			want[e.id] = true
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	fmt.Printf("# minshare experiment harness\n")
	fmt.Printf("# group: %s   quick: %v\n", g, *quick)
	fmt.Printf("# calibrating host cost constants...\n")
	costs := costmodel.Calibrate(g)
	fmt.Printf("# host:  %s\n", costs)
	fmt.Printf("# paper: %s (Pentium III, 2001)\n\n", costmodel.PaperCosts)

	env := &environment{group: g, quick: *quick, costs: costs, usePar: *par}
	failed := false
	for _, e := range experiments {
		if !want[e.id] {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		if err := e.run(env); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.id, err)
			failed = true
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

// values builds n distinct protocol values with a prefix.
func values(prefix string, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s%08d", prefix, i))
	}
	return out
}

// overlapping builds two sets sharing exactly `shared` values.
func overlapping(nR, nS, shared int) (vR, vS [][]byte) {
	common := values("common-", shared)
	vR = append(append([][]byte{}, common...), values("r-only-", nR-shared)...)
	vS = append(append([][]byte{}, common...), values("s-only-", nS-shared)...)
	return
}
