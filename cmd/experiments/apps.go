package main

import (
	"context"
	"fmt"
	"time"

	"minshare/internal/core"
	"minshare/internal/costmodel"
	"minshare/internal/docshare"
	"minshare/internal/medical"
	"minshare/internal/reldb"
	"minshare/internal/transport"
)

// runE3 reproduces the Section 6.2.1 selective-document-sharing
// estimate, three ways: the paper's constants, the host-calibrated
// constants, and an actual scaled-down protocol run extrapolated to the
// paper's workload.
func runE3(env *environment) error {
	const (
		paperDR, paperDS = 10, 100
		paperWordsR      = 1000
		paperWordsS      = 1000
		t1               = 1.544e6
	)
	k := env.group.Bits()

	paperEst := costmodel.DocShareEstimate(paperDR, paperDS, paperWordsR, paperWordsS,
		costmodel.PaperK, costmodel.PaperCosts, costmodel.PaperParallelism, t1)
	hostEst := costmodel.DocShareEstimate(paperDR, paperDS, paperWordsR, paperWordsS,
		k, env.costs, costmodel.PaperParallelism, t1)

	fmt.Printf("paper workload: |D_R|=%d |D_S|=%d |d|=%d words, k=%d, P=%d, T1 line\n",
		paperDR, paperDS, paperWordsR, costmodel.PaperK, costmodel.PaperParallelism)
	fmt.Printf("%-28s %14s %12s %14s %12s\n", "", "exponentiations", "comp time", "bits", "comm time")
	fmt.Printf("%-28s %14s %12s %14s %12s   (paper prints ≈2h / ≈35min)\n", "paper constants (2001 P-III)",
		costmodel.FormatApprox(paperEst.Exponentiations), roundD(paperEst.CompTime),
		costmodel.FormatApprox(paperEst.Bits), roundD(paperEst.CommTime))
	fmt.Printf("%-28s %14s %12s %14s %12s\n", "host-calibrated constants",
		costmodel.FormatApprox(hostEst.Exponentiations), roundD(hostEst.CompTime),
		costmodel.FormatApprox(hostEst.Bits), roundD(hostEst.CommTime))

	// Measured scaled-down run.
	nDR, nDS, words := 2, 4, 30
	if env.quick {
		nDR, nDS, words = 2, 2, 12
	}
	// Both corpora embed the same "shared-word-*" third, so every (r,s)
	// pair overlaps in words/3 terms and clears the 0.1 threshold.
	docsR := genDocs("r", nDR, words, words/3)
	docsS := genDocs("s", nDS, words, words/3)

	cfg := core.Config{Group: env.group, Parallelism: env.usePar}
	ctx := context.Background()
	connR, connS := transport.Pipe()
	defer func() { _ = connR.Close() }()
	meter := transport.NewMeter(connR)

	start := time.Now()
	ch := make(chan error, 1)
	go func() {
		ch <- docshare.MatchSender(ctx, cfg, connS, docsS)
	}()
	matches, err := docshare.MatchReceiver(ctx, cfg, meter, docsR, docshare.DiceLike, 0.1)
	if err != nil {
		return err
	}
	if err := <-ch; err != nil {
		return err
	}
	wall := time.Since(start)

	pairs := nDR * nDS
	paperPairs := paperDR * paperDS
	scale := float64(paperPairs) / float64(pairs) *
		float64(paperWordsR+paperWordsS) / float64(2*words)
	fmt.Printf("measured (scaled %dx%d docs, %d words): %v wall, %d wire bytes, %d matches\n",
		nDR, nDS, words, wall.Round(time.Millisecond), meter.TotalBytes(), len(matches))
	fmt.Printf("extrapolated to paper workload: comp ≈ %v, traffic ≈ %s bits\n",
		roundD(time.Duration(float64(wall)*scale)),
		costmodel.FormatApprox(float64(meter.TotalBytes()*8)*scale))
	return nil
}

func genDocs(prefix string, n, words, shared int) []docshare.Document {
	docs := make([]docshare.Document, n)
	for d := range docs {
		ws := make([]string, words)
		for w := range ws {
			if w < shared {
				ws[w] = fmt.Sprintf("shared-word-%d", w)
			} else {
				ws[w] = fmt.Sprintf("%s-doc%d-word-%d", prefix, d, w)
			}
		}
		docs[d] = docshare.Document{ID: fmt.Sprintf("%s-%d", prefix, d), Words: ws}
	}
	return docs
}

// runE4 reproduces the Section 6.2.2 medical-research estimate the same
// three ways.
func runE4(env *environment) error {
	const t1 = 1.544e6
	k := env.group.Bits()

	paperEst := costmodel.MedicalEstimate(1_000_000, 1_000_000,
		costmodel.PaperK, costmodel.PaperCosts, costmodel.PaperParallelism, t1)
	hostEst := costmodel.MedicalEstimate(1_000_000, 1_000_000,
		k, env.costs, costmodel.PaperParallelism, t1)

	fmt.Printf("paper workload: |V_R|=|V_S|=10^6, k=%d, P=%d, T1 line\n",
		costmodel.PaperK, costmodel.PaperParallelism)
	fmt.Printf("%-28s %14s %12s %14s %12s\n", "", "exponentiations", "comp time", "bits", "comm time")
	fmt.Printf("%-28s %14s %12s %14s %12s   (paper prints ≈4h / ≈1.5h)\n", "paper constants (2001 P-III)",
		costmodel.FormatApprox(paperEst.Exponentiations), roundD(paperEst.CompTime),
		costmodel.FormatApprox(paperEst.Bits), roundD(paperEst.CommTime))
	fmt.Printf("%-28s %14s %12s %14s %12s\n", "host-calibrated constants",
		costmodel.FormatApprox(hostEst.Exponentiations), roundD(hostEst.CompTime),
		costmodel.FormatApprox(hostEst.Bits), roundD(hostEst.CommTime))

	// Measured scaled-down study.
	n := 120
	if env.quick {
		n = 40
	}
	tR, tS := reldb.GenPeopleTables(n, 0.4, 0.6, 0.3, 11)
	cfg := core.Config{Group: env.group, Parallelism: env.usePar}
	start := time.Now()
	counts, err := medical.RunStudy(context.Background(), cfg, cfg, cfg, tR, tS)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	want, err := medical.PlaintextCounts(tR, tS)
	if err != nil {
		return err
	}
	ok := *counts == *want
	fmt.Printf("measured (scaled n=%d study): %v wall, counts %+v, matches plaintext: %v\n",
		n, wall.Round(time.Millisecond), *counts, ok)
	scale := 2_000_000.0 / float64(2*n)
	fmt.Printf("extrapolated to paper workload: comp ≈ %v (single-threaded host)\n",
		roundD(time.Duration(float64(wall)*scale)))
	if !ok {
		return fmt.Errorf("private counts %+v != plaintext %+v", *counts, *want)
	}
	return nil
}

func roundD(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return d.Round(time.Microsecond).String()
	}
}
