package main

import (
	"fmt"

	"minshare/internal/circuit"
	"minshare/internal/costmodel"
)

// runE5 reproduces the Appendix A.1.2 table of circuit sizes, and
// cross-checks the model against real gate counts from the circuit
// builder at feasible sizes.
func runE5(env *environment) error {
	fmt.Println("partitioning circuit (w=32), model f(n) = (m²/(m−1)·G_l + G_e)(n^log_m(2m−1) − 1):")
	fmt.Printf("%-12s %4s %-12s %-12s   paper: (m, f(n))\n", "n", "m", "f(n)", "brute force")
	paper := map[float64]string{
		1e4: "(11, 2.3×10^8)",
		1e6: "(19, 7.3×10^10)",
		1e8: "(32, 1.9×10^13)",
	}
	for _, row := range costmodel.PartitionTable(costmodel.PaperW, 1e4, 1e6, 1e8) {
		fmt.Printf("%-12s %4d %-12s %-12s   %s\n",
			costmodel.FormatApprox(row.N), row.OptimalM,
			costmodel.FormatApprox(row.Partition),
			costmodel.FormatApprox(row.BruteForce),
			paper[row.N])
	}

	fmt.Println("\nbrute-force circuit, model n²·G_e vs real builder gate count:")
	fmt.Printf("%6s %6s %3s %12s %12s\n", "nS", "nR", "w", "model", "built")
	for _, n := range []int{4, 8, 16} {
		c := circuit.BruteForceIntersection(8, n, n)
		model := costmodel.BruteForceGates(float64(n), 8)
		fmt.Printf("%6d %6d %3d %12.0f %12d\n", n, n, 8, model, c.NumGates())
	}
	fmt.Println("(builder count slightly above the model: the model is the paper's lower bound n²·G_e)")

	// The appendix's key structural claim — circuits over ORDERED arrays
	// beat brute force — checked with REAL gates: the repository's
	// bitonic-merge intersection-size circuit vs the all-pairs circuit.
	fmt.Println("\nordered-input (sort-based) circuit vs brute force, REAL gate counts (w=16):")
	fmt.Printf("%6s %14s %14s %8s\n", "n", "sorted gates", "brute gates", "ratio")
	for _, n := range []int{8, 32, 128, 512} {
		sorted := circuit.SortedIntersectionSize(16, n, n).NumGates()
		brute := circuit.BruteForceIntersection(16, n, n).NumGates()
		fmt.Printf("%6d %14d %14d %7.2fx\n", n, sorted, brute, float64(brute)/float64(sorted))
	}
	fmt.Println("(Θ(n·log²n·w) vs Θ(n²·w): the gap the appendix derives for its partitioning circuit)")
	return nil
}

// runE6 reproduces the Appendix A.2 computation comparison table.
func runE6(env *environment) error {
	fmt.Println("computation (paper table: circuit input OT / circuit evaluation / our protocol):")
	fmt.Printf("%-10s %16s %16s %14s\n", "n", "input (OT)", "evaluation", "ours")
	paperRows := map[float64][3]string{
		1e4: {"5×10^4 Ce", "4.7×10^8 Cr", "4×10^4 Ce"},
		1e6: {"5×10^6 Ce", "1.5×10^11 Cr", "4×10^6 Ce"},
		1e8: {"5×10^8 Ce", "3.8×10^13 Cr", "4×10^8 Ce"},
	}
	rows := costmodel.ComparisonTable(costmodel.PaperW, 8, costmodel.PaperK0, costmodel.PaperK1, costmodel.PaperK, 1e4, 1e6, 1e8)
	for _, r := range rows {
		fmt.Printf("%-10s %13s Ce %13s Cr %11s Ce   paper: %v\n",
			costmodel.FormatApprox(r.N),
			costmodel.FormatApprox(r.CircuitInputCe),
			costmodel.FormatApprox(r.CircuitEvalCr),
			costmodel.FormatApprox(r.OursCe),
			paperRows[r.N])
	}
	fmt.Printf("\nOT constants: optimal l = %d, C_ot = %.3f·Ce (paper: l=8, 0.157·Ce)\n",
		costmodel.OptimalOTBatch(), costmodel.OTComputeFactor(costmodel.OptimalOTBatch()))
	fmt.Printf("host ratio Cr/Ce = %.2e: with Cr > Ce/10000 our protocol is substantially faster (paper's criterion)\n",
		float64(env.costs.Cr)/float64(env.costs.Ce))
	return nil
}

// runE7 reproduces the Appendix A.2 communication comparison table and
// the headline 144-days-vs-half-an-hour claim.
func runE7(env *environment) error {
	fmt.Println("communication in bits (paper table: OT input / circuit tables / ours):")
	fmt.Printf("%-10s %14s %14s %12s\n", "n", "input (OT)", "tables", "ours")
	paperRows := map[float64][3]string{
		1e4: {"10^9", "6.0×10^10", "3×10^7"},
		1e6: {"10^11", "1.8×10^13", "3×10^9"},
		1e8: {"10^13", "4.9×10^15", "3×10^11"},
	}
	rows := costmodel.ComparisonTable(costmodel.PaperW, 8, costmodel.PaperK0, costmodel.PaperK1, costmodel.PaperK, 1e4, 1e6, 1e8)
	for _, r := range rows {
		fmt.Printf("%-10s %14s %14s %12s   paper: %v\n",
			costmodel.FormatApprox(r.N),
			costmodel.FormatApprox(r.CircuitInputBits),
			costmodel.FormatApprox(r.CircuitTableBits),
			costmodel.FormatApprox(r.OursBits),
			paperRows[r.N])
	}

	// The headline claim at n = 10^6 over a T1 line.
	const t1 = 1.544e6
	r := rows[1]
	circuitDays := (r.CircuitInputBits + r.CircuitTableBits) / t1 / 86400
	oursHours := r.OursBits / t1 / 3600
	fmt.Printf("\nn = 10^6 on a T1 line: circuit ≈ %.0f days vs ours ≈ %.1f hours (paper: \"144 days ... versus 0.5 hours\")\n",
		circuitDays, oursHours)
	fmt.Printf("ratio ≈ %.0f× (paper: \"1000 to 10,000 times as much communication\")\n",
		(r.CircuitInputBits+r.CircuitTableBits)/r.OursBits)
	return nil
}
