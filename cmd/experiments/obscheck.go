package main

import (
	"context"
	"fmt"
	"time"

	"minshare/internal/core"
	"minshare/internal/costmodel"
	"minshare/internal/kenc"
	"minshare/internal/obs"
	"minshare/internal/transport"
)

// runE11 is the observability cross-check: every protocol runs with both
// endpoints attributed to obs sessions, and the *observed* counters —
// modular exponentiations and on-wire bytes, as the deployed server
// would report them on /metrics — are compared against the Section 6.1
// closed forms via internal/costmodel.  Unlike E1/E2, which wrap the
// scheme and the transport explicitly, this path exercises the exact
// instrumentation stack psiserver serves, so a "true" here certifies the
// live metrics, not just the formulas.
func runE11(env *environment) error {
	elemLen := env.group.ElementLen()
	fmt.Printf("k = %d bits per codeword\n", 8*elemLen)
	fmt.Println("protocol           |V_S|  |V_R|  modexp(formula/observed)  wire-bytes(formula/observed)  match  wall")

	ok := true
	row := func(name string, nS, nR int, wantCe int64, wantWire costmodel.WireCost,
		recvFn, sendFn func(ctx context.Context, conn transport.Conn) error) error {
		reg := obs.NewRegistry()
		sessR := reg.StartSession(obs.SessionInfo{Protocol: name, Role: "receiver"})
		sessS := reg.StartSession(obs.SessionInfo{Protocol: name, Role: "sender"})

		start := time.Now()
		err := runProtocolPair(
			func(ctx context.Context, conn transport.Conn) error {
				err := recvFn(obs.WithSession(ctx, sessR), conn)
				sessR.End(err)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				err := sendFn(obs.WithSession(ctx, sessS), conn)
				sessS.End(err)
				return err
			})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		wall := time.Since(start)

		r, s := sessR.Snapshot().Counters, sessS.Snapshot().Counters
		gotCe := r.ModExps() + s.ModExps()
		gotWire := r.TotalWireBytes()
		wantTotal := wantWire.TotalWireBytes()
		match := gotCe == wantCe && gotWire == wantTotal &&
			s.TotalWireBytes() == wantTotal // sender sees the same traffic mirrored
		if !match {
			ok = false
		}
		fmt.Printf("%-17s  %5d  %5d  %12d / %-8d  %16d / %-10d  %5v  %v\n",
			name, nS, nR, wantCe, gotCe, wantTotal, gotWire, match, wall.Round(time.Millisecond))
		return nil
	}

	for _, n := range sweepSizes(env.quick) {
		nS, nR, shared := n, n+n/2, n/3
		vR, vS := overlapping(nR, nS, shared)
		cfg := core.Config{Group: env.group, Parallelism: env.usePar}

		err := row("intersection", nS, nR,
			costmodel.IntersectionOps(nS, nR).Ce,
			costmodel.IntersectionWireCost(nS, nR, elemLen),
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionReceiver(ctx, cfg, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionSender(ctx, cfg, conn, vS)
				return err
			})
		if err != nil {
			return err
		}

		err = row("intersection-size", nS, nR,
			costmodel.IntersectionSizeOps(nS, nR).Ce,
			costmodel.IntersectionSizeWireCost(nS, nR, elemLen),
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionSizeReceiver(ctx, cfg, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionSizeSender(ctx, cfg, conn, vS)
				return err
			})
		if err != nil {
			return err
		}

		const extPlainLen = 32
		extLen := kenc.NewHybrid(env.group).CiphertextLen(extPlainLen)
		recs := make([]core.JoinRecord, len(vS))
		for i, v := range vS {
			ext := make([]byte, extPlainLen)
			copy(ext, v)
			recs[i] = core.JoinRecord{Value: v, Ext: ext}
		}
		err = row("equijoin", nS, nR,
			costmodel.JoinOps(nS, nR, shared).Ce,
			costmodel.JoinWireCost(nS, nR, elemLen, extLen),
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinReceiver(ctx, cfg, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinSender(ctx, cfg, conn, recs)
				return err
			})
		if err != nil {
			return err
		}

		err = row("equijoin-size", nS, nR,
			costmodel.IntersectionSizeOps(nS, nR).Ce,
			costmodel.JoinSizeWireCost(nS, nR, elemLen),
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinSizeReceiver(ctx, cfg, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.EquijoinSizeSender(ctx, cfg, conn, vS)
				return err
			})
		if err != nil {
			return err
		}
	}
	if !ok {
		return fmt.Errorf("observed counters diverge from the cost model")
	}
	fmt.Println("all observed counters equal the §6.1 closed forms (envelope included)")
	return nil
}
