// Command docscheck is the standalone driver for the repo's
// documentation lint (internal/analysis/docs), run by `make docs-check`.
// It enforces two invariants that plain `go vet` does not:
//
//   - every exported top-level identifier in the internal/* packages
//     carries a doc comment, so the wire-format and protocol references
//     in DESIGN.md always have a godoc counterpart to point at — and in
//     the boundary packages (docs.DeepDocPackages: group, ec25519,
//     transport) the standard reaches exported struct fields and
//     interface methods too;
//   - every intra-repository link in the *.md files resolves, so the
//     cross-references between README.md, DESIGN.md, EXPERIMENTS.md and
//     the benchmark records cannot silently rot;
//   - the EXPERIMENTS.md benchmark-history table matches the committed
//     BENCH_*.json records row for row (also available alone as
//     `docscheck -drift`, the `make docs-drift` gate).
//
// Every violation is printed with its file:line before the nonzero
// exit — a broken file never hides the rest of the findings.  The same
// checks also run inside cmd/psilint, whose exit code folds doc and
// lint findings into one `make check` pass.
package main

import (
	"flag"
	"fmt"
	"os"

	"minshare/internal/analysis/docs"
)

func main() {
	drift := flag.Bool("drift", false, "check only benchmark-history drift (EXPERIMENTS.md vs BENCH_*.json)")
	flag.Parse()
	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	check := docs.CheckAll
	if *drift {
		check = docs.CheckBenchHistory
	}
	problems, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	for _, msg := range problems {
		fmt.Println(msg)
	}
	if len(problems) > 0 {
		fmt.Printf("docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}
