package main

// End-to-end test of the CLI: build the binary once, then run real
// sender and receiver processes against each other over localhost.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

var psiBinary string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "psi-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	psiBinary = filepath.Join(dir, "psi")
	build := exec.Command("go", "build", "-o", psiBinary, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "building psi:", err)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

func writeLines(t *testing.T, lines ...string) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "values-*.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(strings.Join(lines, "\n") + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return f.Name()
}

// freePort reserves a localhost port.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func runPair(t *testing.T, proto, senderFile, receiverFile string) (senderOut, receiverOut string) {
	t.Helper()
	addr := freePort(t)

	sender := exec.Command(psiBinary,
		"-role", "sender", "-proto", proto, "-listen", addr,
		"-values", senderFile, "-group", "256", "-timeout", "30s")
	var sOut, sErrBuf strings.Builder
	sender.Stdout = &sOut
	sender.Stderr = &sErrBuf
	if err := sender.Start(); err != nil {
		t.Fatal(err)
	}
	defer sender.Process.Kill()

	// The receiver retries its dial until the sender's listener is up.
	var rOutBytes []byte
	deadline := time.Now().Add(15 * time.Second)
	for {
		receiver := exec.Command(psiBinary,
			"-role", "receiver", "-proto", proto, "-connect", addr,
			"-values", receiverFile, "-group", "256", "-timeout", "30s")
		out, err := receiver.CombinedOutput()
		if err == nil {
			rOutBytes = out
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("receiver never connected: %v\n%s", err, out)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err := sender.Wait(); err != nil {
		t.Fatalf("sender: %v\nstdout: %s\nstderr: %s", err, sOut.String(), sErrBuf.String())
	}
	return sOut.String(), string(rOutBytes)
}

func TestCLIIntersection(t *testing.T) {
	senderFile := writeLines(t, "apple", "banana", "cherry")
	receiverFile := writeLines(t, "banana", "cherry", "durian")

	sOut, rOut := runPair(t, "intersection", senderFile, receiverFile)

	var got []string
	for _, line := range strings.Split(rOut, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "psi:") {
			continue
		}
		got = append(got, line)
	}
	sort.Strings(got)
	want := []string{"banana", "cherry"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("receiver output %q, want %v", got, want)
	}
	if !strings.Contains(sOut, "peer set size: 3") {
		t.Errorf("sender output %q lacks peer size", sOut)
	}
}

func TestCLIIntersectionSize(t *testing.T) {
	senderFile := writeLines(t, "a", "b", "c", "d")
	receiverFile := writeLines(t, "c", "d", "e")
	_, rOut := runPair(t, "intersection-size", senderFile, receiverFile)
	if !strings.Contains(rOut, "|intersection| = 2") {
		t.Errorf("receiver output %q", rOut)
	}
}

func TestCLIJoin(t *testing.T) {
	senderFile := writeLines(t, "ann\tbalance=10", "bob\tbalance=20", "eve\tbalance=99")
	receiverFile := writeLines(t, "bob", "carol")
	_, rOut := runPair(t, "join", senderFile, receiverFile)
	if !strings.Contains(rOut, "bob\tbalance=20") {
		t.Errorf("receiver output %q lacks joined record", rOut)
	}
	if strings.Contains(rOut, "eve") {
		t.Errorf("receiver output leaked unjoined record: %q", rOut)
	}
}

func TestCLIBadFlags(t *testing.T) {
	out, err := exec.Command(psiBinary, "-role", "nonsense").CombinedOutput()
	if err == nil {
		t.Errorf("bad role accepted: %s", out)
	}
	out, err = exec.Command(psiBinary, "-role", "sender", "-listen", ":0").CombinedOutput()
	if err == nil {
		t.Errorf("missing -values accepted: %s", out)
	}
	out, err = exec.Command(psiBinary, "-role", "sender", "-listen", ":0", "-connect", "x", "-values", "f").CombinedOutput()
	if err == nil {
		t.Errorf("both -listen and -connect accepted: %s", out)
	}
}
