// Command psi runs one of the paper's protocols between two machines
// over TCP.
//
// One side listens, the other connects; the receiver learns the result.
//
//	# on the sender's machine (holds the private set server-side):
//	psi -role sender -proto intersection -listen :9000 -values s.txt
//
//	# on the receiver's machine:
//	psi -role receiver -proto intersection -connect host:9000 -values r.txt
//
// Value files contain one value per line.  For the equijoin the sender's
// file uses TAB-separated "value<TAB>ext" lines; the receiver gets each
// matching value's ext printed alongside it.  -proto is one of
// intersection, join, intersection-size, join-size.  -group selects the
// group backend by registry name — "qr1024" (the paper's parameters,
// the default), any other builtin "qr<bits>" size, or "ec25519" for the
// Curve25519 backend — or, for compatibility, a bare safe-prime bit
// count.  Both parties must select the same backend; a mismatch fails
// the handshake with an explicit backend error.
//
// -shards k (k >= 2) splits the run into k shard-parallel sub-sessions
// over one multiplexed connection, pipelining encryption against the
// link.  Both parties must pass the same k; a mismatch fails the
// handshake explicitly, and 0 or 1 keeps the classic wire format
// byte for byte.
//
// -subscribe N turns a receiver-side intersection or join into a
// standing query against a psiserver running with -standing: after the
// base result, the receiver stays subscribed and prints up to N
// refreshed results as the server pushes encrypted deltas — O(churn)
// work per update instead of a full protocol re-run.
//
// With -trace-out the run is traced: phase spans, latency histograms and
// the distributed trace ID (carried to the peer in the handshake) are
// recorded, and the session's trace is written to the given file as
// Chrome trace_event JSON, loadable in chrome://tracing or Perfetto.
// When the peer serves a debug endpoint (psiserver -debug-addr), add
// -trace-peer http://host:port and the peer's half of the same trace is
// fetched from its flight recorder and merged into the file, rendering
// both parties' timelines side by side.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/obs"
	"minshare/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "psi:", err)
		os.Exit(1)
	}
}

// options holds every psi flag.  Flags are registered through
// defineFlags so the README's flag table can be checked against the
// real flag set (see TestREADMEFlagParity).
type options struct {
	role      *string
	proto     *string
	listen    *string
	connect   *string
	valueFile *string
	groupName *string
	par       *int
	shards    *int
	subscribe *int
	timeout   *time.Duration
	traceOut  *string
	tracePeer *string
}

// defineFlags registers the psi flag set on fs.
func defineFlags(fs *flag.FlagSet) *options {
	return &options{
		role:      fs.String("role", "", "party role: sender | receiver"),
		proto:     fs.String("proto", "intersection", "protocol: intersection | join | intersection-size | join-size"),
		listen:    fs.String("listen", "", "listen address (e.g. :9000)"),
		connect:   fs.String("connect", "", "peer address to connect to"),
		valueFile: fs.String("values", "", "path to the value file (one value per line; sender join files use value<TAB>ext)"),
		groupName: fs.String("group", "qr1024", "group backend: "+strings.Join(group.Backends(), " | ")+", or a safe-prime bit count"),
		par:       fs.Int("p", 0, "encryption parallelism (0 = all cores)"),
		shards:    fs.Int("shards", 0, "shard-parallel sub-sessions (0 or 1 = classic single session; both parties must agree)"),
		subscribe: fs.Int("subscribe", 0, "receiver only, intersection|join: stand the query — subscribe to the sender's updates and print up to N refreshed results (0 = one-shot; needs a psiserver -standing peer)"),
		timeout:   fs.Duration("timeout", 10*time.Minute, "overall protocol deadline"),
		traceOut:  fs.String("trace-out", "", "write the run's trace as Chrome trace_event JSON to this file"),
		tracePeer: fs.String("trace-peer", "", "peer debug endpoint (http://host:port) to fetch and merge the other half of the trace from"),
	}
}

func run() error {
	o := defineFlags(flag.CommandLine)
	flag.Parse()
	var (
		role      = o.role
		proto     = o.proto
		listen    = o.listen
		connect   = o.connect
		valueFile = o.valueFile
		groupName = o.groupName
		par       = o.par
		shards    = o.shards
		subscribe = o.subscribe
		timeout   = o.timeout
		traceOut  = o.traceOut
		tracePeer = o.tracePeer
	)

	if *role != "sender" && *role != "receiver" {
		return fmt.Errorf("-role must be sender or receiver")
	}
	if (*listen == "") == (*connect == "") {
		return fmt.Errorf("exactly one of -listen and -connect is required")
	}
	if *valueFile == "" {
		return fmt.Errorf("-values is required")
	}
	if *subscribe > 0 {
		if *role != "receiver" {
			return fmt.Errorf("-subscribe is receiver-only (the sender side needs a live table; run psiserver -standing)")
		}
		if *proto != "intersection" && *proto != "join" {
			return fmt.Errorf("-subscribe supports intersection and join, not %q", *proto)
		}
		if *shards > 1 {
			return fmt.Errorf("-subscribe requires an unsharded session")
		}
	}

	g, err := group.ByFlag(*groupName)
	if err != nil {
		return err
	}
	if *shards < 0 || *shards > transport.MaxShards {
		return fmt.Errorf("-shards must be between 0 and %d", transport.MaxShards)
	}
	cfg := core.Config{Group: g, Parallelism: *par, Shards: *shards}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	conn, err := establish(ctx, *listen, *connect)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()

	var sess *obs.Session
	if *traceOut != "" {
		peer := *connect
		if peer == "" {
			peer = *listen
		}
		sess = obs.NewRegistry().StartSession(obs.SessionInfo{
			Protocol: protocolName(*proto),
			Peer:     peer,
			Role:     *role,
		})
		ctx = obs.WithSession(ctx, sess)
	}

	switch *proto {
	case "intersection":
		err = runIntersection(ctx, cfg, conn, *role, *valueFile, *subscribe)
	case "join":
		err = runJoin(ctx, cfg, conn, *role, *valueFile, *subscribe)
	case "intersection-size":
		err = runIntersectionSize(ctx, cfg, conn, *role, *valueFile)
	case "join-size":
		err = runJoinSize(ctx, cfg, conn, *role, *valueFile)
	default:
		return fmt.Errorf("unknown -proto %q", *proto)
	}

	if sess != nil {
		// Export even a failed run — a trace of what a broken session did
		// is exactly what the flight recorder exists for.
		snap := sess.End(err)
		if terr := writeMergedTrace(ctx, *traceOut, *tracePeer, snap); terr != nil {
			if err == nil {
				return terr
			}
			fmt.Fprintf(os.Stderr, "psi: writing trace: %v\n", terr)
		}
	}
	return err
}

// protocolName maps the -proto flag onto the paper's protocol names as
// the rest of the stack (wire.Protocol, psiserver) reports them.
func protocolName(proto string) string {
	switch proto {
	case "join":
		return "equijoin"
	case "join-size":
		return "equijoin-size"
	default:
		return proto
	}
}

// writeMergedTrace exports the finished session as Chrome trace_event
// JSON, merging in the peer's sessions for the same trace ID fetched
// from its /debug/sessions flight recorder when peerURL is set.  A peer
// fetch failure degrades to a one-sided trace with a warning: the local
// half is still worth keeping.
func writeMergedTrace(ctx context.Context, path, peerURL string, local obs.SessionSnapshot) error {
	snaps := []obs.SessionSnapshot{local}
	if peerURL != "" {
		peers, err := fetchPeerTrace(ctx, peerURL, local.TraceID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psi: fetching peer trace (continuing one-sided): %v\n", err)
		} else if len(peers) == 0 {
			fmt.Fprintf(os.Stderr, "psi: peer has no trace %s in its flight recorder (continuing one-sided)\n", local.TraceID)
		} else {
			snaps = append(snaps, peers...)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTraceEvents(f, snaps); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "psi: trace %s (%d session(s)) written to %s\n", local.TraceID, len(snaps), path)
	return nil
}

// fetchPeerTrace asks the peer's debug endpoint for every session it
// retained under the given trace identity.
func fetchPeerTrace(ctx context.Context, base string, tid obs.TraceID) ([]obs.SessionSnapshot, error) {
	url := strings.TrimSuffix(base, "/") + "/debug/sessions?trace=" + tid.String()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := (&http.Client{Timeout: 10 * time.Second}).Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer returned %s for %s", resp.Status, url)
	}
	var snaps []obs.SessionSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		return nil, fmt.Errorf("decoding peer trace: %w", err)
	}
	return snaps, nil
}

func establish(ctx context.Context, listen, connect string) (transport.Conn, error) {
	if connect != "" {
		return transport.Dial(ctx, "tcp", connect)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	defer func() { _ = ln.Close() }()
	fmt.Fprintf(os.Stderr, "psi: listening on %s\n", ln.Addr())
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		return transport.NewTCP(r.c), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func readValues(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		out = append(out, []byte(line))
	}
	return out, sc.Err()
}

func readJoinRecords(path string) ([]core.JoinRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []core.JoinRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		value, ext, _ := strings.Cut(line, "\t")
		out = append(out, core.JoinRecord{Value: []byte(value), Ext: []byte(ext)})
	}
	return out, sc.Err()
}

func printIntersection(res *core.IntersectionResult) {
	lines := make([]string, len(res.Values))
	for i, v := range res.Values {
		lines[i] = string(v)
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	fmt.Fprintf(os.Stderr, "psi: |intersection| = %d, |V_S| = %d\n", len(res.Values), res.SenderSetSize)
}

func runIntersection(ctx context.Context, cfg core.Config, conn transport.Conn, role, path string, subscribe int) error {
	values, err := readValues(path)
	if err != nil {
		return err
	}
	if role == "sender" {
		info, err := core.IntersectionSender(ctx, cfg, conn, values)
		if err != nil {
			return err
		}
		fmt.Printf("peer set size: %d\n", info.ReceiverSetSize)
		return nil
	}
	if subscribe > 0 {
		q, err := core.IntersectionReceiverStanding(ctx, cfg, conn, values)
		if err != nil {
			return err
		}
		printIntersection(q.Result())
		for i := 0; i < subscribe; i++ {
			res, err := q.Await(ctx)
			if errors.Is(err, core.ErrSubscriptionEnded) {
				fmt.Fprintln(os.Stderr, "psi: subscription ended by sender")
				return nil
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "psi: update %d/%d (sender version %d)\n", i+1, subscribe, q.Version())
			printIntersection(res)
		}
		return q.Close(ctx)
	}
	res, err := core.IntersectionReceiver(ctx, cfg, conn, values)
	if err != nil {
		return err
	}
	printIntersection(res)
	return nil
}

func printJoin(res *core.JoinResult) {
	for _, m := range res.Matches {
		fmt.Printf("%s\t%s\n", m.Value, m.Ext)
	}
	fmt.Fprintf(os.Stderr, "psi: %d joined values, |V_S| = %d\n", len(res.Matches), res.SenderSetSize)
}

func runJoin(ctx context.Context, cfg core.Config, conn transport.Conn, role, path string, subscribe int) error {
	if role == "sender" {
		recs, err := readJoinRecords(path)
		if err != nil {
			return err
		}
		info, err := core.EquijoinSender(ctx, cfg, conn, recs)
		if err != nil {
			return err
		}
		fmt.Printf("peer set size: %d\n", info.ReceiverSetSize)
		return nil
	}
	values, err := readValues(path)
	if err != nil {
		return err
	}
	if subscribe > 0 {
		q, err := core.EquijoinReceiverStanding(ctx, cfg, conn, values)
		if err != nil {
			return err
		}
		printJoin(q.Result())
		for i := 0; i < subscribe; i++ {
			res, err := q.Await(ctx)
			if errors.Is(err, core.ErrSubscriptionEnded) {
				fmt.Fprintln(os.Stderr, "psi: subscription ended by sender")
				return nil
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "psi: update %d/%d (sender version %d)\n", i+1, subscribe, q.Version())
			printJoin(res)
		}
		return q.Close(ctx)
	}
	res, err := core.EquijoinReceiver(ctx, cfg, conn, values)
	if err != nil {
		return err
	}
	printJoin(res)
	return nil
}

func runIntersectionSize(ctx context.Context, cfg core.Config, conn transport.Conn, role, path string) error {
	values, err := readValues(path)
	if err != nil {
		return err
	}
	if role == "sender" {
		info, err := core.IntersectionSizeSender(ctx, cfg, conn, values)
		if err != nil {
			return err
		}
		fmt.Printf("peer set size: %d\n", info.ReceiverSetSize)
		return nil
	}
	res, err := core.IntersectionSizeReceiver(ctx, cfg, conn, values)
	if err != nil {
		return err
	}
	fmt.Printf("|intersection| = %d (|V_S| = %d)\n", res.IntersectionSize, res.SenderSetSize)
	return nil
}

func runJoinSize(ctx context.Context, cfg core.Config, conn transport.Conn, role, path string) error {
	values, err := readValues(path)
	if err != nil {
		return err
	}
	if role == "sender" {
		info, err := core.EquijoinSizeSender(ctx, cfg, conn, values)
		if err != nil {
			return err
		}
		fmt.Printf("peer multiset size: %d\n", info.ReceiverMultisetSize)
		return nil
	}
	res, err := core.EquijoinSizeReceiver(ctx, cfg, conn, values)
	if err != nil {
		return err
	}
	fmt.Printf("|join| = %d (|T_S.A| = %d)\n", res.JoinSize, res.SenderMultisetSize)
	return nil
}
