// Command psi runs one of the paper's protocols between two machines
// over TCP.
//
// One side listens, the other connects; the receiver learns the result.
//
//	# on the sender's machine (holds the private set server-side):
//	psi -role sender -proto intersection -listen :9000 -values s.txt
//
//	# on the receiver's machine:
//	psi -role receiver -proto intersection -connect host:9000 -values r.txt
//
// Value files contain one value per line.  For the equijoin the sender's
// file uses TAB-separated "value<TAB>ext" lines; the receiver gets each
// matching value's ext printed alongside it.  -proto is one of
// intersection, join, intersection-size, join-size.  -group selects the
// builtin safe-prime modulus size (default 1024, the paper's).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "psi:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		role      = flag.String("role", "", "party role: sender | receiver")
		proto     = flag.String("proto", "intersection", "protocol: intersection | join | intersection-size | join-size")
		listen    = flag.String("listen", "", "listen address (e.g. :9000)")
		connect   = flag.String("connect", "", "peer address to connect to")
		valueFile = flag.String("values", "", "path to the value file (one value per line; sender join files use value<TAB>ext)")
		groupBits = flag.Int("group", 1024, "builtin safe-prime group size in bits")
		par       = flag.Int("p", 0, "encryption parallelism (0 = all cores)")
		timeout   = flag.Duration("timeout", 10*time.Minute, "overall protocol deadline")
	)
	flag.Parse()

	if *role != "sender" && *role != "receiver" {
		return fmt.Errorf("-role must be sender or receiver")
	}
	if (*listen == "") == (*connect == "") {
		return fmt.Errorf("exactly one of -listen and -connect is required")
	}
	if *valueFile == "" {
		return fmt.Errorf("-values is required")
	}

	g, err := group.Builtin(group.Size(*groupBits))
	if err != nil {
		return err
	}
	cfg := core.Config{Group: g, Parallelism: *par}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	conn, err := establish(ctx, *listen, *connect)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()

	switch *proto {
	case "intersection":
		return runIntersection(ctx, cfg, conn, *role, *valueFile)
	case "join":
		return runJoin(ctx, cfg, conn, *role, *valueFile)
	case "intersection-size":
		return runIntersectionSize(ctx, cfg, conn, *role, *valueFile)
	case "join-size":
		return runJoinSize(ctx, cfg, conn, *role, *valueFile)
	default:
		return fmt.Errorf("unknown -proto %q", *proto)
	}
}

func establish(ctx context.Context, listen, connect string) (transport.Conn, error) {
	if connect != "" {
		return transport.Dial(ctx, "tcp", connect)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	defer func() { _ = ln.Close() }()
	fmt.Fprintf(os.Stderr, "psi: listening on %s\n", ln.Addr())
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		return transport.NewTCP(r.c), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func readValues(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		out = append(out, []byte(line))
	}
	return out, sc.Err()
}

func readJoinRecords(path string) ([]core.JoinRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []core.JoinRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		value, ext, _ := strings.Cut(line, "\t")
		out = append(out, core.JoinRecord{Value: []byte(value), Ext: []byte(ext)})
	}
	return out, sc.Err()
}

func runIntersection(ctx context.Context, cfg core.Config, conn transport.Conn, role, path string) error {
	values, err := readValues(path)
	if err != nil {
		return err
	}
	if role == "sender" {
		info, err := core.IntersectionSender(ctx, cfg, conn, values)
		if err != nil {
			return err
		}
		fmt.Printf("peer set size: %d\n", info.ReceiverSetSize)
		return nil
	}
	res, err := core.IntersectionReceiver(ctx, cfg, conn, values)
	if err != nil {
		return err
	}
	lines := make([]string, len(res.Values))
	for i, v := range res.Values {
		lines[i] = string(v)
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	fmt.Fprintf(os.Stderr, "psi: |intersection| = %d, |V_S| = %d\n", len(res.Values), res.SenderSetSize)
	return nil
}

func runJoin(ctx context.Context, cfg core.Config, conn transport.Conn, role, path string) error {
	if role == "sender" {
		recs, err := readJoinRecords(path)
		if err != nil {
			return err
		}
		info, err := core.EquijoinSender(ctx, cfg, conn, recs)
		if err != nil {
			return err
		}
		fmt.Printf("peer set size: %d\n", info.ReceiverSetSize)
		return nil
	}
	values, err := readValues(path)
	if err != nil {
		return err
	}
	res, err := core.EquijoinReceiver(ctx, cfg, conn, values)
	if err != nil {
		return err
	}
	for _, m := range res.Matches {
		fmt.Printf("%s\t%s\n", m.Value, m.Ext)
	}
	fmt.Fprintf(os.Stderr, "psi: %d joined values, |V_S| = %d\n", len(res.Matches), res.SenderSetSize)
	return nil
}

func runIntersectionSize(ctx context.Context, cfg core.Config, conn transport.Conn, role, path string) error {
	values, err := readValues(path)
	if err != nil {
		return err
	}
	if role == "sender" {
		info, err := core.IntersectionSizeSender(ctx, cfg, conn, values)
		if err != nil {
			return err
		}
		fmt.Printf("peer set size: %d\n", info.ReceiverSetSize)
		return nil
	}
	res, err := core.IntersectionSizeReceiver(ctx, cfg, conn, values)
	if err != nil {
		return err
	}
	fmt.Printf("|intersection| = %d (|V_S| = %d)\n", res.IntersectionSize, res.SenderSetSize)
	return nil
}

func runJoinSize(ctx context.Context, cfg core.Config, conn transport.Conn, role, path string) error {
	values, err := readValues(path)
	if err != nil {
		return err
	}
	if role == "sender" {
		info, err := core.EquijoinSizeSender(ctx, cfg, conn, values)
		if err != nil {
			return err
		}
		fmt.Printf("peer multiset size: %d\n", info.ReceiverMultisetSize)
		return nil
	}
	res, err := core.EquijoinSizeReceiver(ctx, cfg, conn, values)
	if err != nil {
		return err
	}
	fmt.Printf("|join| = %d (|T_S.A| = %d)\n", res.JoinSize, res.SenderMultisetSize)
	return nil
}
