package main

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"minshare/internal/reldb"
)

// registerDBHandlers mounts live-table mutation endpoints on the debug
// mux, so an operator can drive standing queries and watch subscribers
// receive deltas without restarting the server:
//
//	POST /db/append             body: one CSV row per line, no header,
//	                            fields typed per the table schema
//	POST /db/delete?value=v     delete every row whose -attr column
//	                            equals v (typed like the CSV field)
//
// Both respond with the rows touched and the table version the mutation
// produced — the version a subscriber's next pushed update will carry.
// These handlers share the debug listener's trust model: anyone who can
// reach -debug-addr can already read heap profiles, so gate the address
// at the network layer.
func registerDBHandlers(mux *http.ServeMux, table *reldb.Table, attr string, logf func(format string, args ...any)) {
	cols := table.Schema().Columns()
	attrIdx, _ := table.Schema().ColumnIndex(attr)

	mux.HandleFunc("POST /db/append", func(w http.ResponseWriter, r *http.Request) {
		inserted := 0
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			fields := strings.Split(line, ",")
			if len(fields) != len(cols) {
				http.Error(w, fmt.Sprintf("row %q has %d fields, schema has %d columns", line, len(fields), len(cols)), http.StatusBadRequest)
				return
			}
			row := make(reldb.Row, len(cols))
			for i, f := range fields {
				v, err := parseField(cols[i], strings.TrimSpace(f))
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				row[i] = v
			}
			if err := table.Insert(row); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			inserted++
		}
		if err := sc.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		logf("db: appended %d row(s), version %d", inserted, table.Version())
		fmt.Fprintf(w, "inserted %d row(s); table version %d\n", inserted, table.Version())
	})

	mux.HandleFunc("POST /db/delete", func(w http.ResponseWriter, r *http.Request) {
		raw := r.URL.Query().Get("value")
		if raw == "" {
			http.Error(w, "missing ?value=", http.StatusBadRequest)
			return
		}
		v, err := parseField(cols[attrIdx], raw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n := table.Delete(func(row reldb.Row) bool { return row[attrIdx].Equal(v) })
		logf("db: deleted %d row(s) with %s=%s, version %d", n, attr, raw, table.Version())
		fmt.Fprintf(w, "deleted %d row(s); table version %d\n", n, table.Version())
	})
}

// parseField types a CSV field per its column, mirroring
// reldb.ReadCSV's value syntax.
func parseField(col reldb.Column, s string) (reldb.Value, error) {
	switch col.Type {
	case reldb.TypeString:
		return reldb.String(s), nil
	case reldb.TypeInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return reldb.Value{}, fmt.Errorf("column %s: %q is not an int", col.Name, s)
		}
		return reldb.Int(i), nil
	case reldb.TypeBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return reldb.Value{}, fmt.Errorf("column %s: %q is not a bool", col.Name, s)
		}
		return reldb.Bool(b), nil
	}
	return reldb.Value{}, fmt.Errorf("column %s has unsupported type %v", col.Name, col.Type)
}
