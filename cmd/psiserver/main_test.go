package main

// End-to-end test of the server CLI: build the binary once, run a real
// psiserver process with -standing, and drive it with party.Client —
// base runs, pushed updates via the /db mutation handlers, and a clean
// unsubscribe.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/party"
	"minshare/internal/reldb"
)

var serverBinary string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "psiserver-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	serverBinary = filepath.Join(dir, "psiserver")
	build := exec.Command("go", "build", "-o", serverBinary, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "building psiserver:", err)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func enc(s string) []byte { return reldb.String(s).Encode() }

// TestServerStandingEndToEnd exercises the full deployment loop: serve
// a CSV table with -standing, subscribe a client, mutate the table over
// the debug endpoint, and watch the pushed deltas land.
func TestServerStandingEndToEnd(t *testing.T) {
	csvFile := filepath.Join(t.TempDir(), "table.csv")
	if err := os.WriteFile(csvFile, []byte("v:string,note:string\na,one\nb,two\nc,three\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	addr, debugAddr := freePort(t), freePort(t)

	server := exec.Command(serverBinary,
		"-listen", addr, "-debug-addr", debugAddr,
		"-table", csvFile, "-attr", "v",
		"-group", "256", "-standing")
	var serverLog strings.Builder
	server.Stderr = &serverLog
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
		if t.Failed() {
			t.Logf("server log:\n%s", serverLog.String())
		}
	}()

	g, err := group.ByFlag("256")
	if err != nil {
		t.Fatal(err)
	}
	client := party.NewClient(addr, core.Config{Group: g})
	client.Retry = party.Retry{Attempts: 50, BaseDelay: 100 * time.Millisecond, MaxDelay: 200 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	q, err := client.IntersectStanding(ctx, [][]byte{enc("b"), enc("zebra")})
	if err != nil {
		t.Fatalf("IntersectStanding: %v", err)
	}
	defer q.Close(ctx)
	if got := len(q.Result().Values); got != 1 {
		t.Fatalf("base intersection = %d values, want 1 (b)", got)
	}

	// Append a row over the debug endpoint; the subscriber must see
	// "zebra" join the intersection without a new session.
	mutate(t, ctx, debugAddr, "/db/append", "zebra,note-z\n")
	res, err := q.Await(ctx)
	if err != nil {
		t.Fatalf("Await after append: %v", err)
	}
	if got := len(res.Values); got != 2 {
		t.Fatalf("intersection after append = %d values, want 2", got)
	}

	// Delete it again.
	mutate(t, ctx, debugAddr, "/db/delete?value=zebra", "")
	res, err = q.Await(ctx)
	if err != nil {
		t.Fatalf("Await after delete: %v", err)
	}
	if got := len(res.Values); got != 1 {
		t.Fatalf("intersection after delete = %d values, want 1", got)
	}
	if err := q.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The same server still answers classic one-shot sessions.
	one, err := client.Intersect(ctx, [][]byte{enc("a"), enc("zebra")})
	if err != nil {
		t.Fatalf("one-shot Intersect: %v", err)
	}
	if got := len(one.Values); got != 1 {
		t.Errorf("one-shot intersection = %d values, want 1 (a)", got)
	}
}

// mutate POSTs to the server's debug endpoint, retrying until the
// endpoint is up.
func mutate(t *testing.T, ctx context.Context, debugAddr, path, body string) {
	t.Helper()
	url := "http://" + debugAddr + path
	deadline := time.Now().Add(30 * time.Second)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				buf := make([]byte, 512)
				n, _ := resp.Body.Read(buf)
				t.Fatalf("POST %s: %s: %s", path, resp.Status, buf[:n])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("POST %s never reachable: %v", path, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
