package main

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var readmeFlagRow = regexp.MustCompile("^\\| `-([a-z0-9-]+)`")

// readmeFlagRows parses the flag names out of the README table under
// the given heading ("Which flag do I want?" section).
func readmeFlagRows(t *testing.T, heading string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string]bool)
	inSection := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "#") {
			inSection = strings.TrimSpace(line) == heading
			continue
		}
		if !inSection {
			continue
		}
		if m := readmeFlagRow.FindStringSubmatch(line); m != nil {
			rows[m[1]] = true
		}
	}
	if len(rows) == 0 {
		t.Fatalf("no flag rows found under %q in README.md", heading)
	}
	return rows
}

// TestREADMEFlagParity pins the README's "Which flag do I want?" table
// for this command to the binary's actual flag set: a flag added,
// renamed, or removed without updating the table fails here.
func TestREADMEFlagParity(t *testing.T) {
	documented := readmeFlagRows(t, "### `psiserver` flags")
	fs := flag.NewFlagSet("psiserver", flag.ContinueOnError)
	defineFlags(fs)
	defined := make(map[string]bool)
	fs.VisitAll(func(f *flag.Flag) { defined[f.Name] = true })
	for name := range defined {
		if !documented[name] {
			t.Errorf("flag -%s is not documented in README.md", name)
		}
	}
	for name := range documented {
		if !defined[name] {
			t.Errorf("README.md documents -%s, which the binary does not define", name)
		}
	}
}
