// Command psiserver runs a long-lived minimal-sharing endpoint for one
// table attribute: the enterprise-side deployment of the paper's
// protocols, with the Section 2.3 query-restriction defences enabled.
//
//	psiserver -listen :9000 -table data.csv -attr customer
//
// Remote receivers (cmd/psi with -connect, or party.Client) can then run
// intersection, intersection-size, equijoin (ext(v) = the full rows
// matching each attribute value) and equijoin-size sessions against it.
//
// With -debug-addr the server additionally exposes a live introspection
// endpoint: /metrics serves per-session and process-global counters
// (modular exponentiations, oracle hashes, frames, bytes), phase-latency
// histograms (p50/p90/p99), and phase timings in text or JSON;
// /debug/sessions serves the flight recorder — the last completed
// session traces inside the -trace-buffer byte budget, listable,
// fetchable per session, and exportable as Chrome trace_event JSON for
// chrome://tracing / Perfetto; /debug/vars the same snapshot as an
// expvar; and /debug/pprof/* the runtime profiles.  Every session is
// summarised on the structured log with its distributed-trace ID (shared
// with the client via the handshake), and the process-global counter
// totals are dumped on shutdown.
//
// The server is hardened for unattended deployment: -timeout-handshake,
// -timeout-idle and -timeout-session evict stalled peers, -max-sessions
// caps concurrency (excess arrivals are refused immediately with a wire
// error), transient accept failures are retried with backoff, and on
// SIGINT/SIGTERM the server drains — stops accepting, lets in-flight
// sessions finish for up to -drain, then force-cancels the stragglers.
//
// The CSV header types columns as name:type (string|int|bool); see
// internal/reldb.ReadCSV.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/leakage"
	"minshare/internal/obs"
	"minshare/internal/party"
	"minshare/internal/reldb"
	"minshare/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "psiserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", ":9000", "listen address")
		debugAddr  = flag.String("debug-addr", "", "optional address for the introspection endpoint (/metrics, /debug/vars, /debug/pprof)")
		tableFile  = flag.String("table", "", "CSV file with the table (typed header; see reldb.ReadCSV)")
		attr       = flag.String("attr", "", "join attribute column")
		groupName  = flag.String("group", "qr1024", "group backend: "+strings.Join(group.Backends(), " | ")+", or a safe-prime bit count")
		protocols  = flag.String("protocols", "", "comma-separated allowed protocols (default: all); e.g. intersection-size,join-size")
		maxPeerSet = flag.Int("max-peer-set", 1<<20, "reject sessions announcing a larger peer set")
		minPeerSet = flag.Int("min-peer-set", 0, "reject sessions announcing a smaller peer set")
		maxQueries = flag.Int("max-queries", 1000, "per-peer session budget (0 = unlimited)")
		maxShards  = flag.Int("max-shards", 0, "largest shard count adopted from a peer's sharded handshake (0 = transport limit, 1 = refuse sharding)")

		traceBuffer = flag.Int64("trace-buffer", obs.DefaultFlightBudget, "flight-recorder byte budget for completed session traces, served at /debug/sessions on the debug endpoint (0 = disabled)")

		cacheSets   = flag.Int64("cache-sets", 0, "encrypted-set cache budget in bytes; warm peers skip the bulk exponentiation over the table (0 = disabled; slots are keyed by remote IP, so do not enable when distinct peers can share an address via NAT/proxy)")
		cacheRotate = flag.Duration("cache-rotate", 0, "rotate (flush) the encrypted-set cache at this interval, retiring the pinned exponents (0 = never)")

		maxSessions      = flag.Int("max-sessions", 64, "concurrent session cap; arrivals beyond it are refused immediately (0 = unlimited)")
		handshakeTimeout = flag.Duration("timeout-handshake", 10*time.Second, "eviction deadline for a connection that never sends its header (0 = none)")
		idleTimeout      = flag.Duration("timeout-idle", 30*time.Second, "per-frame idle allowance; a peer stalling mid-stream is evicted (0 = none)")
		sessionTimeout   = flag.Duration("timeout-session", 10*time.Minute, "whole-session wall-clock cap (0 = none)")
		drainTimeout     = flag.Duration("drain", 30*time.Second, "graceful-shutdown allowance for in-flight sessions before they are force-cancelled (0 = cancel immediately)")
	)
	flag.Parse()
	if *tableFile == "" || *attr == "" {
		return fmt.Errorf("-table and -attr are required")
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	f, err := os.Open(*tableFile)
	if err != nil {
		return err
	}
	table, err := reldb.ReadCSV("table", f)
	f.Close()
	if err != nil {
		return err
	}

	values, err := table.DistinctValues(*attr)
	if err != nil {
		return err
	}
	multiset, err := table.ColumnValues(*attr)
	if err != nil {
		return err
	}
	joinValues, exts, err := table.ExtPayloads(*attr)
	if err != nil {
		return err
	}
	records := make([]core.JoinRecord, len(joinValues))
	for i := range joinValues {
		records[i] = core.JoinRecord{Value: joinValues[i], Ext: exts[i]}
	}

	g, err := group.ByFlag(*groupName)
	if err != nil {
		return err
	}

	policy := party.Policy{
		MaxPeerSetSize:    *maxPeerSet,
		MinPeerSetSize:    *minPeerSet,
		MaxQueriesPerPeer: *maxQueries,
		MaxShards:         *maxShards,
	}
	if *protocols != "" {
		byName := map[string]wire.Protocol{
			"intersection":      wire.ProtoIntersection,
			"join":              wire.ProtoEquijoin,
			"intersection-size": wire.ProtoIntersectionSize,
			"join-size":         wire.ProtoEquijoinSize,
		}
		for _, name := range strings.Split(*protocols, ",") {
			p, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return fmt.Errorf("unknown protocol %q", name)
			}
			policy.AllowedProtocols = append(policy.AllowedProtocols, p)
		}
	}

	reg := obs.Default()
	reg.Flight().SetBudget(*traceBuffer)
	var setCache *core.SenderSetCache
	if *cacheSets > 0 {
		setCache = core.NewSenderSetCache(*cacheSets, reg.Cache())
	}
	srv := &party.Server{
		Config:   core.Config{Group: g},
		Values:   values,
		Records:  records,
		Multiset: multiset,
		Policy:   policy,
		Timeouts: party.Timeouts{
			Handshake: *handshakeTimeout,
			Idle:      *idleTimeout,
			Session:   *sessionTimeout,
		},
		MaxSessions:  *maxSessions,
		DrainTimeout: *drainTimeout,
		SetCache:     setCache,
		TableName:    "table",
		DataVersion:  table.Version, // concurrency-safe: Version reads atomically
		Auditor:      leakage.NewAuditor(leakage.AuditPolicy{MaxOverlapFraction: 1, MaxQueries: *maxQueries}),
		Obs:          reg,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if setCache != nil && *cacheRotate > 0 {
		go func() {
			tick := time.NewTicker(*cacheRotate)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					setCache.Rotate()
					logger.Info("encrypted-set cache rotated")
				}
			}
		}()
	}

	if *debugAddr != "" {
		reg.PublishExpvar("minshare")
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dsrv := &http.Server{Handler: reg.DebugMux()}
		go func() {
			<-ctx.Done()
			dsrv.Close() // lint:ignore errclose close is the shutdown signal; Serve reports anything beyond ErrServerClosed
		}()
		go func() {
			if err := dsrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				logger.Error("debug endpoint failed", "err", err)
			}
		}()
		logger.Info("debug endpoint up", "addr", dln.Addr().String())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	logger.Info("serving",
		"distinct_values", len(values), "attr", *attr,
		"rows", table.NumRows(), "addr", ln.Addr().String())

	err = srv.Serve(ctx, ln)
	if ctx.Err() != nil {
		// Final census: everything this process computed and shipped.
		snap := reg.Snapshot()
		logger.Info("shutting down",
			"sessions_finished", snap.SessionsFinished,
			"sessions_failed", snap.SessionsFailed,
			"timeout_evictions", snap.Lifecycle.HandshakeTimeouts+snap.Lifecycle.IdleTimeouts+snap.Lifecycle.SessionTimeouts,
			"saturation_rejects", snap.Lifecycle.SaturationRejects,
			"drain_forced", snap.Lifecycle.DrainForced,
			"cache_hits", snap.Cache.Hits,
			"cache_misses", snap.Cache.Misses,
			"modexp_total", snap.Global.ModExps(),
			"oracle_hashes", snap.Global.OracleHashes,
			"wire_bytes_sent", snap.Global.WireBytesSent,
			"wire_bytes_recv", snap.Global.WireBytesRecv)
		obs.WriteText(os.Stderr, snap)
		return nil
	}
	return err
}
