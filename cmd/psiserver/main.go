// Command psiserver runs a long-lived minimal-sharing endpoint for one
// table attribute: the enterprise-side deployment of the paper's
// protocols, with the Section 2.3 query-restriction defences enabled.
//
//	psiserver -listen :9000 -table data.csv -attr customer
//
// Remote receivers (cmd/psi with -connect, or party.Client) can then run
// intersection, intersection-size, equijoin (ext(v) = the full rows
// matching each attribute value) and equijoin-size sessions against it.
//
// With -standing the server also serves standing queries: a subscribing
// receiver (psi -subscribe, or party.Client.IntersectStanding /
// JoinStanding) holds its session open after the base run and is pushed
// encrypted deltas as the table changes — O(churn) incremental
// maintenance instead of full re-runs.  -delta-churn bounds how large a
// delta is worth pushing (or applying to the encrypted-set cache)
// before a full rebuild wins.  The debug endpoint gains POST /db/append
// and /db/delete handlers for mutating the live table, so standing
// subscribers can be exercised end to end.
//
// With -debug-addr the server additionally exposes a live introspection
// endpoint: /metrics serves per-session and process-global counters
// (modular exponentiations, oracle hashes, frames, bytes), phase-latency
// histograms (p50/p90/p99), and phase timings in text or JSON;
// /debug/sessions serves the flight recorder — the last completed
// session traces inside the -trace-buffer byte budget, listable,
// fetchable per session, and exportable as Chrome trace_event JSON for
// chrome://tracing / Perfetto; /debug/vars the same snapshot as an
// expvar; and /debug/pprof/* the runtime profiles.  Every session is
// summarised on the structured log with its distributed-trace ID (shared
// with the client via the handshake), and the process-global counter
// totals are dumped on shutdown.
//
// The server is hardened for unattended deployment: -timeout-handshake,
// -timeout-idle and -timeout-session evict stalled peers, -max-sessions
// caps concurrency (excess arrivals are refused immediately with a wire
// error), transient accept failures are retried with backoff, and on
// SIGINT/SIGTERM the server drains — stops accepting, lets in-flight
// sessions finish for up to -drain, then force-cancels the stragglers.
//
// The CSV header types columns as name:type (string|int|bool); see
// internal/reldb.ReadCSV.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/leakage"
	"minshare/internal/obs"
	"minshare/internal/party"
	"minshare/internal/reldb"
	"minshare/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "psiserver:", err)
		os.Exit(1)
	}
}

// options holds every psiserver flag.  Flags are registered through
// defineFlags so the README's flag table can be checked against the
// real flag set (see TestREADMEFlagParity).
type options struct {
	listen     *string
	debugAddr  *string
	tableFile  *string
	attr       *string
	groupName  *string
	protocols  *string
	maxPeerSet *int
	minPeerSet *int
	maxQueries *int
	maxShards  *int

	standing   *bool
	deltaChurn *float64

	traceBuffer *int64

	cacheSets   *int64
	cacheRotate *time.Duration

	maxSessions      *int
	handshakeTimeout *time.Duration
	idleTimeout      *time.Duration
	sessionTimeout   *time.Duration
	drainTimeout     *time.Duration
}

// defineFlags registers the psiserver flag set on fs.
func defineFlags(fs *flag.FlagSet) *options {
	return &options{
		listen:     fs.String("listen", ":9000", "listen address"),
		debugAddr:  fs.String("debug-addr", "", "optional address for the introspection endpoint (/metrics, /debug/vars, /debug/pprof, /db/append, /db/delete)"),
		tableFile:  fs.String("table", "", "CSV file with the table (typed header; see reldb.ReadCSV)"),
		attr:       fs.String("attr", "", "join attribute column"),
		groupName:  fs.String("group", "qr1024", "group backend: "+strings.Join(group.Backends(), " | ")+", or a safe-prime bit count"),
		protocols:  fs.String("protocols", "", "comma-separated allowed protocols (default: all); e.g. intersection-size,join-size"),
		maxPeerSet: fs.Int("max-peer-set", 1<<20, "reject sessions announcing a larger peer set"),
		minPeerSet: fs.Int("min-peer-set", 0, "reject sessions announcing a smaller peer set"),
		maxQueries: fs.Int("max-queries", 1000, "per-peer session budget (0 = unlimited)"),
		maxShards:  fs.Int("max-shards", 0, "largest shard count adopted from a peer's sharded handshake (0 = transport limit, 1 = refuse sharding)"),

		standing:   fs.Bool("standing", false, "serve standing queries: a subscribing receiver (psi -subscribe) holds its session open and is pushed encrypted deltas as the table changes"),
		deltaChurn: fs.Float64("delta-churn", 0, "delta fraction of the served set above which delta upgrades and standing pushes fall back to a full rebuild (0 = default 0.25, negative = disable delta upgrades)"),

		traceBuffer: fs.Int64("trace-buffer", obs.DefaultFlightBudget, "flight-recorder byte budget for completed session traces, served at /debug/sessions on the debug endpoint (0 = disabled)"),

		cacheSets:   fs.Int64("cache-sets", 0, "encrypted-set cache budget in bytes; warm peers skip the bulk exponentiation over the table (0 = disabled; slots are keyed by remote IP, so do not enable when distinct peers can share an address via NAT/proxy)"),
		cacheRotate: fs.Duration("cache-rotate", 0, "rotate (flush) the encrypted-set cache at this interval, retiring the pinned exponents (0 = never)"),

		maxSessions:      fs.Int("max-sessions", 64, "concurrent session cap; arrivals beyond it are refused immediately (0 = unlimited)"),
		handshakeTimeout: fs.Duration("timeout-handshake", 10*time.Second, "eviction deadline for a connection that never sends its header (0 = none)"),
		idleTimeout:      fs.Duration("timeout-idle", 30*time.Second, "per-frame idle allowance; a peer stalling mid-stream is evicted (0 = none)"),
		sessionTimeout:   fs.Duration("timeout-session", 10*time.Minute, "whole-session wall-clock cap (0 = none)"),
		drainTimeout:     fs.Duration("drain", 30*time.Second, "graceful-shutdown allowance for in-flight sessions before they are force-cancelled (0 = cancel immediately)"),
	}
}

func run() error {
	o := defineFlags(flag.CommandLine)
	flag.Parse()
	var (
		listen     = o.listen
		debugAddr  = o.debugAddr
		tableFile  = o.tableFile
		attr       = o.attr
		groupName  = o.groupName
		protocols  = o.protocols
		maxPeerSet = o.maxPeerSet
		minPeerSet = o.minPeerSet
		maxQueries = o.maxQueries
		maxShards  = o.maxShards

		standing   = o.standing
		deltaChurn = o.deltaChurn

		traceBuffer = o.traceBuffer

		cacheSets   = o.cacheSets
		cacheRotate = o.cacheRotate

		maxSessions      = o.maxSessions
		handshakeTimeout = o.handshakeTimeout
		idleTimeout      = o.idleTimeout
		sessionTimeout   = o.sessionTimeout
		drainTimeout     = o.drainTimeout
	)
	if *tableFile == "" || *attr == "" {
		return fmt.Errorf("-table and -attr are required")
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	f, err := os.Open(*tableFile)
	if err != nil {
		return err
	}
	table, err := reldb.ReadCSV("table", f)
	f.Close()
	if err != nil {
		return err
	}

	binding, err := party.BindTable(table, *attr)
	if err != nil {
		return err
	}
	values, err := table.DistinctValues(*attr)
	if err != nil {
		return err
	}

	// A standing subscriber is quiet between pushes by design, so the
	// per-frame and whole-session deadlines tuned for one-shot runs would
	// evict it mid-subscription.  Lift them when -standing is on, unless
	// the operator set them explicitly.
	if *standing {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["timeout-idle"] {
			*idleTimeout = 0
		}
		if !set["timeout-session"] {
			*sessionTimeout = 0
		}
	}

	g, err := group.ByFlag(*groupName)
	if err != nil {
		return err
	}

	policy := party.Policy{
		MaxPeerSetSize:    *maxPeerSet,
		MinPeerSetSize:    *minPeerSet,
		MaxQueriesPerPeer: *maxQueries,
		MaxShards:         *maxShards,
	}
	if *protocols != "" {
		byName := map[string]wire.Protocol{
			"intersection":      wire.ProtoIntersection,
			"join":              wire.ProtoEquijoin,
			"intersection-size": wire.ProtoIntersectionSize,
			"join-size":         wire.ProtoEquijoinSize,
		}
		for _, name := range strings.Split(*protocols, ",") {
			p, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return fmt.Errorf("unknown protocol %q", name)
			}
			policy.AllowedProtocols = append(policy.AllowedProtocols, p)
		}
	}

	reg := obs.Default()
	reg.Flight().SetBudget(*traceBuffer)
	var setCache *core.SenderSetCache
	if *cacheSets > 0 {
		setCache = core.NewSenderSetCache(*cacheSets, reg.Cache())
	}
	srv := &party.Server{
		Config: core.Config{Group: g},
		// Source binds the live table: every session serves a consistent
		// snapshot, and the change log backs cache delta-upgrades and
		// standing pushes.
		Source:        binding,
		DeltaChurnMax: *deltaChurn,
		Standing:      *standing,
		Policy:        policy,
		Timeouts: party.Timeouts{
			Handshake: *handshakeTimeout,
			Idle:      *idleTimeout,
			Session:   *sessionTimeout,
		},
		MaxSessions:  *maxSessions,
		DrainTimeout: *drainTimeout,
		SetCache:     setCache,
		TableName:    "table",
		Auditor:      leakage.NewAuditor(leakage.AuditPolicy{MaxOverlapFraction: 1, MaxQueries: *maxQueries}),
		Obs:          reg,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if setCache != nil && *cacheRotate > 0 {
		go func() {
			tick := time.NewTicker(*cacheRotate)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					setCache.Rotate()
					logger.Info("encrypted-set cache rotated")
				}
			}
		}()
	}

	if *debugAddr != "" {
		reg.PublishExpvar("minshare")
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dmux := http.NewServeMux()
		dmux.Handle("/", reg.DebugMux())
		registerDBHandlers(dmux, table, *attr, func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		})
		dsrv := &http.Server{Handler: dmux}
		go func() {
			<-ctx.Done()
			dsrv.Close() // lint:ignore errclose close is the shutdown signal; Serve reports anything beyond ErrServerClosed
		}()
		go func() {
			if err := dsrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				logger.Error("debug endpoint failed", "err", err)
			}
		}()
		logger.Info("debug endpoint up", "addr", dln.Addr().String())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	logger.Info("serving",
		"distinct_values", len(values), "attr", *attr,
		"rows", table.NumRows(), "addr", ln.Addr().String())

	err = srv.Serve(ctx, ln)
	if ctx.Err() != nil {
		// Final census: everything this process computed and shipped.
		snap := reg.Snapshot()
		logger.Info("shutting down",
			"sessions_finished", snap.SessionsFinished,
			"sessions_failed", snap.SessionsFailed,
			"timeout_evictions", snap.Lifecycle.HandshakeTimeouts+snap.Lifecycle.IdleTimeouts+snap.Lifecycle.SessionTimeouts,
			"saturation_rejects", snap.Lifecycle.SaturationRejects,
			"drain_forced", snap.Lifecycle.DrainForced,
			"cache_hits", snap.Cache.Hits,
			"cache_misses", snap.Cache.Misses,
			"modexp_total", snap.Global.ModExps(),
			"oracle_hashes", snap.Global.OracleHashes,
			"wire_bytes_sent", snap.Global.WireBytesSent,
			"wire_bytes_recv", snap.Global.WireBytesRecv)
		obs.WriteText(os.Stderr, snap)
		return nil
	}
	return err
}
