// Command psiserver runs a long-lived minimal-sharing endpoint for one
// table attribute: the enterprise-side deployment of the paper's
// protocols, with the Section 2.3 query-restriction defences enabled.
//
//	psiserver -listen :9000 -table data.csv -attr customer
//
// Remote receivers (cmd/psi with -connect, or party.Client) can then run
// intersection, intersection-size, equijoin (ext(v) = the full rows
// matching each attribute value) and equijoin-size sessions against it.
//
// The CSV header types columns as name:type (string|int|bool); see
// internal/reldb.ReadCSV.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/leakage"
	"minshare/internal/party"
	"minshare/internal/reldb"
	"minshare/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "psiserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", ":9000", "listen address")
		tableFile  = flag.String("table", "", "CSV file with the table (typed header; see reldb.ReadCSV)")
		attr       = flag.String("attr", "", "join attribute column")
		groupBits  = flag.Int("group", 1024, "builtin safe-prime group size in bits")
		protocols  = flag.String("protocols", "", "comma-separated allowed protocols (default: all); e.g. intersection-size,join-size")
		maxPeerSet = flag.Int("max-peer-set", 1<<20, "reject sessions announcing a larger peer set")
		minPeerSet = flag.Int("min-peer-set", 0, "reject sessions announcing a smaller peer set")
		maxQueries = flag.Int("max-queries", 1000, "per-peer session budget (0 = unlimited)")
	)
	flag.Parse()
	if *tableFile == "" || *attr == "" {
		return fmt.Errorf("-table and -attr are required")
	}

	f, err := os.Open(*tableFile)
	if err != nil {
		return err
	}
	table, err := reldb.ReadCSV("table", f)
	f.Close()
	if err != nil {
		return err
	}

	values, err := table.DistinctValues(*attr)
	if err != nil {
		return err
	}
	multiset, err := table.ColumnValues(*attr)
	if err != nil {
		return err
	}
	joinValues, exts, err := table.ExtPayloads(*attr)
	if err != nil {
		return err
	}
	records := make([]core.JoinRecord, len(joinValues))
	for i := range joinValues {
		records[i] = core.JoinRecord{Value: joinValues[i], Ext: exts[i]}
	}

	g, err := group.Builtin(group.Size(*groupBits))
	if err != nil {
		return err
	}

	policy := party.Policy{
		MaxPeerSetSize:    *maxPeerSet,
		MinPeerSetSize:    *minPeerSet,
		MaxQueriesPerPeer: *maxQueries,
	}
	if *protocols != "" {
		byName := map[string]wire.Protocol{
			"intersection":      wire.ProtoIntersection,
			"join":              wire.ProtoEquijoin,
			"intersection-size": wire.ProtoIntersectionSize,
			"join-size":         wire.ProtoEquijoinSize,
		}
		for _, name := range strings.Split(*protocols, ",") {
			p, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return fmt.Errorf("unknown protocol %q", name)
			}
			policy.AllowedProtocols = append(policy.AllowedProtocols, p)
		}
	}

	srv := &party.Server{
		Config:   core.Config{Group: g},
		Values:   values,
		Records:  records,
		Multiset: multiset,
		Policy:   policy,
		Auditor:  leakage.NewAuditor(leakage.AuditPolicy{MaxOverlapFraction: 1, MaxQueries: *maxQueries}),
		Logf:     log.Printf,
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("psiserver: serving %d distinct %q values (%d rows) on %s",
		len(values), *attr, table.NumRows(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = srv.Serve(ctx, ln)
	if ctx.Err() != nil {
		log.Printf("psiserver: shutting down")
		return nil
	}
	return err
}
