// Command groupgen generates or describes a commutative-encryption
// group for the protocols.
//
//	groupgen -bits 1024            # generate a fresh safe-prime modulus
//	groupgen -group ec25519        # describe a fixed-parameter backend
//	groupgen -group qr256          # describe a builtin safe-prime group
//
// With the default -group qr it searches for a fresh safe prime of
// -bits bits and prints its modulus as hex.  Safe primes are rare;
// large sizes take minutes on one core, and the builtin groups
// (group.Builtin) cover common sizes without waiting.  Any other
// -group value names a registry backend — those have fixed parameters
// (nothing to generate), so groupgen prints the backend's name, wire
// code, codeword width and parameter digest instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"minshare/internal/group"
)

func main() {
	bits := flag.Int("bits", 1024, "modulus size in bits (safe-prime generation only)")
	backend := flag.String("group", "qr", "backend to generate or describe: qr (generate), or a registry name (ec25519, qr1024, …)")
	timeout := flag.Duration("timeout", time.Hour, "give up after this long")
	flag.Parse()

	if *backend != "qr" {
		b, err := group.ByFlag(*backend)
		if err != nil {
			fmt.Fprintln(os.Stderr, "groupgen:", err)
			os.Exit(1)
		}
		digest := b.ParamDigest()
		fmt.Printf("backend:      %s\n", b.Name())
		fmt.Printf("wire code:    %d\n", b.Code())
		fmt.Printf("codeword:     %d bits (%d-byte elements)\n", b.Bits(), b.ElementLen())
		fmt.Printf("param digest: %x\n", digest)
		if g, ok := b.(*group.Group); ok {
			fmt.Printf("modulus:      %x\n", g.P())
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	start := time.Now()
	g, err := group.Generate(ctx, *bits, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "groupgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "groupgen: %d-bit safe prime found in %s\n",
		g.Bits(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("%x\n", g.P())
}
