// Command groupgen generates a fresh safe-prime group for the
// commutative-encryption protocols and prints its modulus as hex.
//
//	groupgen -bits 1024
//
// Safe primes are rare; large sizes take minutes on one core.  The
// builtin groups (group.Builtin) cover common sizes without waiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"minshare/internal/group"
)

func main() {
	bits := flag.Int("bits", 1024, "modulus size in bits")
	timeout := flag.Duration("timeout", time.Hour, "give up after this long")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	start := time.Now()
	g, err := group.Generate(ctx, *bits, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "groupgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "groupgen: %d-bit safe prime found in %s\n",
		g.Bits(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("%x\n", g.P())
}
