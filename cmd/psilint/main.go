// Command psilint runs the repo's protocol-safety static-analysis
// suite (internal/analysis) over the given package patterns and exits
// nonzero on any finding, each addressed as
//
//	file:line: analyzer: message
//
// The suite mechanically enforces the implementation invariants behind
// the paper's security argument: secretlog (no key material in
// logs/errors), bigintalias (no in-place mutation of cache-shared
// big.Ints), ctxflow (cancellation reaches every callee and protocol
// goroutine), errclose (no dropped transport Send/Close/Flush errors)
// and spanpair (every obs span ends on all paths).  The documentation
// checks (internal/analysis/docs) run in the same pass by default, so
// one exit code gates both; -docs=false runs the analyzers alone.
//
// Findings are suppressed by a `// lint:ignore <analyzer> <reason>`
// comment on the flagged line or the line above; -audit lists every
// such directive with its reason (the `make lint-fix-audit` inventory)
// instead of linting.
//
// Exit codes: 0 clean, 1 findings, 2 internal failure (unparseable or
// untypeable tree).
package main

import (
	"flag"
	"fmt"
	"os"

	"minshare/internal/analysis"
	"minshare/internal/analysis/docs"
)

func main() {
	audit := flag.Bool("audit", false, "list every lint:ignore directive with its reason, instead of linting")
	withDocs := flag.Bool("docs", true, "fold the documentation checks (cmd/docscheck) into this run")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	if _, err := loader.AddModuleFromGoMod("."); err != nil {
		fatal(err)
	}
	seen := make(map[string]bool)
	var pkgs []*analysis.Package
	for _, pat := range patterns {
		paths, err := loader.Expand(".", pat)
		if err != nil {
			fatal(err)
		}
		for _, path := range paths {
			if seen[path] {
				continue
			}
			seen[path] = true
			pkg, err := loader.LoadPath(path)
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, pkg)
		}
	}

	if *audit {
		recs := analysis.Audit(pkgs)
		for _, rec := range recs {
			fmt.Println(rec)
		}
		fmt.Printf("psilint: %d lint:ignore directive(s)\n", len(recs))
		return
	}

	findings := 0
	for _, d := range analysis.Run(pkgs, analysis.Suite()) {
		fmt.Println(d)
		findings++
	}
	if *withDocs {
		problems, err := docs.CheckAll(".")
		if err != nil {
			fatal(err)
		}
		for _, msg := range problems {
			fmt.Println(msg)
		}
		findings += len(problems)
	}
	if findings > 0 {
		fmt.Printf("psilint: %d finding(s)\n", findings)
		os.Exit(1)
	}
	fmt.Println("psilint: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psilint:", err)
	os.Exit(2)
}
