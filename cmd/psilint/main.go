// Command psilint runs the repo's protocol-safety static-analysis
// suite (internal/analysis) over the given package patterns and exits
// nonzero on any finding, each addressed as
//
//	file:line: analyzer: message
//
// The suite mechanically enforces the implementation invariants behind
// the paper's security argument: secretlog (no key material in
// logs/errors), bigintalias (no in-place mutation of cache-shared
// big.Ints), ctxflow (cancellation reaches every callee and protocol
// goroutine), errclose (no dropped transport Send/Close/Flush errors),
// spanpair (every obs span ends on all paths), leakflow (the
// interprocedural taint proof that only hashed, encrypted or
// declassified data reaches the wire, logs or trace export) and
// wirekind (every dispatch switch handles every wire message kind).
// The documentation checks (internal/analysis/docs) run in the same
// pass by default, so one exit code gates both; -docs=false runs the
// analyzers alone.
//
// Findings are suppressed by a `// lint:ignore <analyzer> <reason>`
// comment on the flagged line or the line above; -audit lists every
// such directive with its reason (the `make lint-fix-audit` inventory)
// instead of linting.
//
//	-why file:line   explain the finding at that position; for leakflow
//	                 findings this prints the full source→sink call
//	                 chain the taint engine followed
//	-summary         append a per-analyzer findings/elapsed table
//	-C dir           run against the module rooted at dir
//
// Exit codes: 0 clean, 1 findings, 2 internal failure (unparseable or
// untypeable tree).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"minshare/internal/analysis"
	"minshare/internal/analysis/docs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	audit := fs.Bool("audit", false, "list every lint:ignore directive with its reason, instead of linting")
	withDocs := fs.Bool("docs", true, "fold the documentation checks (cmd/docscheck) into this run")
	summary := fs.Bool("summary", false, "append a per-analyzer findings/elapsed table")
	why := fs.String("why", "", "file:line — explain the finding at this position, with its source→sink chain when interprocedural")
	dir := fs.String("C", ".", "run against the module rooted at this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := loadPackages(*dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "psilint:", err)
		return 2
	}

	if *audit {
		recs := analysis.Audit(pkgs)
		for _, rec := range recs {
			fmt.Fprintln(stdout, rec)
		}
		fmt.Fprintf(stdout, "psilint: %d lint:ignore directive(s)\n", len(recs))
		return 0
	}

	if *why != "" {
		return explain(stdout, stderr, pkgs, *why)
	}

	findings := 0
	if *summary {
		findings = lintWithSummary(stdout, pkgs)
	} else {
		for _, d := range analysis.Run(pkgs, analysis.Suite()) {
			fmt.Fprintln(stdout, d)
			findings++
		}
	}
	if *withDocs {
		problems, err := docs.CheckAll(*dir)
		if err != nil {
			fmt.Fprintln(stderr, "psilint:", err)
			return 2
		}
		for _, msg := range problems {
			fmt.Fprintln(stdout, msg)
		}
		findings += len(problems)
	}
	if findings > 0 {
		fmt.Fprintf(stdout, "psilint: %d finding(s)\n", findings)
		return 1
	}
	fmt.Fprintln(stdout, "psilint: ok")
	return 0
}

// loadPackages type-checks every package matched by patterns in the
// module rooted at dir.
func loadPackages(dir string, patterns []string) ([]*analysis.Package, error) {
	loader := analysis.NewLoader()
	if _, err := loader.AddModuleFromGoMod(dir); err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var pkgs []*analysis.Package
	for _, pat := range patterns {
		paths, err := loader.Expand(dir, pat)
		if err != nil {
			return nil, err
		}
		for _, path := range paths {
			if seen[path] {
				continue
			}
			seen[path] = true
			pkg, err := loader.LoadPath(path)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// lintWithSummary runs each analyzer separately so the table can report
// per-analyzer findings and elapsed time.  Malformed-directive findings
// (the "ignore" pseudo-analyzer) surface once, not once per analyzer.
func lintWithSummary(stdout io.Writer, pkgs []*analysis.Package) int {
	type row struct {
		name     string
		findings int
		elapsed  time.Duration
	}
	var rows []row
	printed := make(map[string]bool)
	total := 0
	start := time.Now()
	for _, a := range analysis.Suite() {
		t0 := time.Now()
		diags := analysis.Run(pkgs, []*analysis.Analyzer{a})
		elapsed := time.Since(t0)
		count := 0
		for _, d := range diags {
			line := d.String()
			if printed[line] {
				continue
			}
			printed[line] = true
			fmt.Fprintln(stdout, line)
			count++
		}
		rows = append(rows, row{a.Name, count, elapsed})
		total += count
	}
	tw := tabwriter.NewWriter(stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "\nanalyzer\tfindings\telapsed\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\n", r.name, r.findings, r.elapsed.Round(time.Millisecond))
	}
	fmt.Fprintf(tw, "total\t%d\t%s\n", total, time.Since(start).Round(time.Millisecond))
	tw.Flush()
	fmt.Fprintln(stdout)
	return total
}

// explain prints the finding at the -why position together with the
// source→sink chain the taint engine recorded for it.
func explain(stdout, stderr io.Writer, pkgs []*analysis.Package, target string) int {
	file, line, err := parseWhyTarget(target)
	if err != nil {
		fmt.Fprintln(stderr, "psilint:", err)
		return 2
	}
	matched := 0
	for _, d := range analysis.Run(pkgs, analysis.Suite()) {
		if d.Pos.Line != line || !sameFile(d.Pos.Filename, file) {
			continue
		}
		matched++
		printFinding(stdout, d)
	}
	if matched == 0 {
		fmt.Fprintf(stdout, "psilint: no finding at %s:%d (already clean, or suppressed by lint:ignore)\n", file, line)
		return 1
	}
	return 0
}

// printFinding renders one finding in -why form: the canonical line,
// then the recorded source→sink flow when the finding is
// interprocedural.
func printFinding(w io.Writer, d analysis.Diagnostic) {
	fmt.Fprintln(w, d)
	if len(d.Chain) == 0 {
		fmt.Fprintln(w, "  (single-site finding: the violation is local to this line)")
		return
	}
	fmt.Fprintln(w, "  flow:")
	for _, step := range d.Chain {
		fmt.Fprintf(w, "    %s\n", step)
	}
}

// parseWhyTarget splits "file:line".
func parseWhyTarget(s string) (string, int, error) {
	i := strings.LastIndexByte(s, ':')
	if i <= 0 || i == len(s)-1 {
		return "", 0, fmt.Errorf("-why wants file:line, got %q", s)
	}
	line, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return "", 0, fmt.Errorf("-why wants file:line, got %q", s)
	}
	return s[:i], line, nil
}

// sameFile matches a diagnostic's filename against the user-given path
// by exact match or path-boundary suffix, so "core/standing.go" finds
// "internal/core/standing.go".
func sameFile(have, want string) bool {
	if have == want {
		return true
	}
	return strings.HasSuffix(have, want) &&
		(len(have) == len(want) || have[len(have)-len(want)-1] == '/')
}
