package main

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"minshare/internal/analysis"
)

// fixtureDir is the stdlib-only golden fixture module: one ctxflow
// violation, one malformed directive, one documented suppression.
var fixtureDir = filepath.Join("testdata", "mod")

// TestRunGoldenLint pins the driver's finding output format end to end.
func TestRunGoldenLint(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-docs=false", "-C", fixtureDir, "./..."}, &out, &out)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput:\n%s", code, out.String())
	}
	want := strings.Join([]string{
		filepath.Join(fixtureDir, "pump", "pump.go") + ":16: ctxflow: context.Background() passed to fetch while the caller receives a ctx — pass it on, or detach explicitly with context.WithoutCancel",
		filepath.Join(fixtureDir, "pump", "pump.go") + `:19: ignore: malformed lint:ignore directive: want "lint:ignore <analyzer> <reason>"`,
		"psilint: 2 finding(s)",
		"",
	}, "\n")
	if out.String() != want {
		t.Errorf("lint output mismatch\n got:\n%s\nwant:\n%s", out.String(), want)
	}
}

// TestRunGoldenAudit pins the -audit inventory format.
func TestRunGoldenAudit(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-audit", "-C", fixtureDir, "./..."}, &out, &out)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\noutput:\n%s", code, out.String())
	}
	want := strings.Join([]string{
		filepath.Join(fixtureDir, "pump", "pump.go") + ":26: ctxflow: fixture keeps one documented detach for the audit listing",
		"psilint: 1 lint:ignore directive(s)",
		"",
	}, "\n")
	if out.String() != want {
		t.Errorf("audit output mismatch\n got:\n%s\nwant:\n%s", out.String(), want)
	}
}

// TestRunGoldenWhy pins -why: a hit explains the finding, a miss says
// so and exits 1, and the file may be addressed by suffix.
func TestRunGoldenWhy(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-C", fixtureDir, "-why", "pump/pump.go:16", "./..."}, &out, &out)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\noutput:\n%s", code, out.String())
	}
	want := strings.Join([]string{
		filepath.Join(fixtureDir, "pump", "pump.go") + ":16: ctxflow: context.Background() passed to fetch while the caller receives a ctx — pass it on, or detach explicitly with context.WithoutCancel",
		"  (single-site finding: the violation is local to this line)",
		"",
	}, "\n")
	if out.String() != want {
		t.Errorf("-why output mismatch\n got:\n%s\nwant:\n%s", out.String(), want)
	}

	out.Reset()
	code = run([]string{"-C", fixtureDir, "-why", "pump/pump.go:9", "./..."}, &out, &out)
	if code != 1 {
		t.Fatalf("clean-line exit code = %d, want 1\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no finding at pump/pump.go:9") {
		t.Errorf("clean-line output missing 'no finding' notice:\n%s", out.String())
	}
}

// TestPrintFindingChain pins the -why rendering of an interprocedural
// leakflow finding (the chain itself is produced by the taint engine;
// see internal/analysis fixtures for its construction).
func TestPrintFindingChain(t *testing.T) {
	d := analysis.Diagnostic{
		Pos:      token.Position{Filename: "internal/core/session.go", Line: 42},
		Analyzer: "leakflow",
		Message:  "unsanitized flow of a raw key exponent (commutative.Key.Exponent) into transport Send (the wire) (via send)",
		Chain: []string{
			"internal/core/session.go:40: source: a raw key exponent (commutative.Key.Exponent)",
			"internal/core/session.go:42: tainted argument passes into send",
			"internal/core/core.go:210: sink: transport Send (the wire)",
		},
	}
	var out strings.Builder
	printFinding(&out, d)
	want := strings.Join([]string{
		"internal/core/session.go:42: leakflow: unsanitized flow of a raw key exponent (commutative.Key.Exponent) into transport Send (the wire) (via send)",
		"  flow:",
		"    internal/core/session.go:40: source: a raw key exponent (commutative.Key.Exponent)",
		"    internal/core/session.go:42: tainted argument passes into send",
		"    internal/core/core.go:210: sink: transport Send (the wire)",
		"",
	}, "\n")
	if out.String() != want {
		t.Errorf("chain rendering mismatch\n got:\n%s\nwant:\n%s", out.String(), want)
	}
}

// TestRunSummary checks the -summary table lists every analyzer with a
// findings count and an elapsed duration (timings vary, so this matches
// by pattern rather than golden text).
func TestRunSummary(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-docs=false", "-summary", "-C", fixtureDir, "./..."}, &out, &out)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput:\n%s", code, out.String())
	}
	text := out.String()
	for _, a := range analysis.Suite() {
		re := regexp.MustCompile(`(?m)^` + a.Name + `\s+\d+\s+\S+$`)
		if !re.MatchString(text) {
			t.Errorf("summary table missing a row for %s:\n%s", a.Name, text)
		}
	}
	if !regexp.MustCompile(`(?m)^total\s+2\s+\S+$`).MatchString(text) {
		t.Errorf("summary table missing the total row with 2 findings:\n%s", text)
	}
	// The malformed-directive finding must not repeat per analyzer.
	if n := strings.Count(text, "malformed lint:ignore directive"); n != 1 {
		t.Errorf("malformed-directive finding printed %d times, want once:\n%s", n, text)
	}
}
