module pfixture

go 1.22
