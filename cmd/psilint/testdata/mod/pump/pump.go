// Package pump is the psilint driver's golden fixture: a tiny
// stdlib-only module with one ctxflow violation and one malformed
// suppression directive, so the driver tests pin the exact output
// format (finding lines, counts, -audit inventory, -why rendering).
package pump

import "context"

func fetch(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// drain receives a ctx but detaches its callee from it.
func drain(ctx context.Context) error {
	return fetch(context.Background())
}

// lint:ignore ctxflow
func sloppyDirective(ctx context.Context) error {
	return fetch(ctx)
}

// quiet shows a well-formed suppression: audited, not a finding.
func quiet(ctx context.Context) error {
	// lint:ignore ctxflow fixture keeps one documented detach for the audit listing
	return fetch(context.Background())
}
