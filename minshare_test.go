package minshare

import (
	"context"
	"testing"

	"minshare/internal/group"
	"minshare/internal/reldb"
)

func smallCfg() Config {
	return Config{Group: group.TestGroup()}
}

func bs(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestIntersectFacade(t *testing.T) {
	res, info, err := Intersect(context.Background(), smallCfg(),
		bs("a", "b", "c"), bs("b", "c", "d", "e"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 || res.SenderSetSize != 4 || info.ReceiverSetSize != 3 {
		t.Errorf("res=%+v info=%+v", res, info)
	}
}

func TestJoinFacade(t *testing.T) {
	recs := []JoinRecord{
		{Value: []byte("b"), Ext: []byte("ext-b")},
		{Value: []byte("z"), Ext: []byte("ext-z")},
	}
	res, _, err := Join(context.Background(), smallCfg(), bs("a", "b"), recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || string(res.Matches[0].Ext) != "ext-b" {
		t.Errorf("res=%+v", res)
	}
}

func TestIntersectSizeFacade(t *testing.T) {
	res, _, err := IntersectSize(context.Background(), smallCfg(),
		bs("a", "b", "c"), bs("c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	if res.IntersectionSize != 1 {
		t.Errorf("size = %d", res.IntersectionSize)
	}
}

func TestJoinSizeFacade(t *testing.T) {
	res, _, err := JoinSize(context.Background(), smallCfg(),
		bs("a", "a", "b"), bs("a", "b", "b", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinSize != 2*1+1*3 {
		t.Errorf("join size = %d, want 5", res.JoinSize)
	}
}

func TestGroupBits(t *testing.T) {
	g, err := GroupBits(512)
	if err != nil || g.Bits() != 512 {
		t.Errorf("GroupBits(512): %v, %v", g, err)
	}
	if _, err := GroupBits(123); err == nil {
		t.Error("GroupBits(123) succeeded")
	}
}

func TestFacadeErrorPropagation(t *testing.T) {
	// Conflicting join records must surface as an error, not a hang.
	recs := []JoinRecord{
		{Value: []byte("v"), Ext: []byte("1")},
		{Value: []byte("v"), Ext: []byte("2")},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, _, err := Join(ctx, smallCfg(), bs("v"), recs); err == nil {
		t.Fatal("conflicting records accepted")
	}
}

// TestEndToEndRelationalJoin is the integration test tying the stack
// together: two reldb tables, ext(v) payloads built by the relational
// layer, the private equijoin protocol in the middle, and the joined
// rows reconstructed and compared against the plaintext reldb join.
func TestEndToEndRelationalJoin(t *testing.T) {
	// Enterprise S: orders keyed by customer.
	orders := reldb.NewTable("orders", reldb.MustSchema(
		reldb.Column{Name: "customer", Type: reldb.TypeString},
		reldb.Column{Name: "amount", Type: reldb.TypeInt},
	))
	orders.MustInsert(reldb.String("ann"), reldb.Int(10))
	orders.MustInsert(reldb.String("ann"), reldb.Int(25))
	orders.MustInsert(reldb.String("bob"), reldb.Int(40))
	orders.MustInsert(reldb.String("eve"), reldb.Int(99))

	// Enterprise R: its customer list.
	customers := reldb.NewTable("customers", reldb.MustSchema(
		reldb.Column{Name: "name", Type: reldb.TypeString},
	))
	customers.MustInsert(reldb.String("ann"))
	customers.MustInsert(reldb.String("bob"))
	customers.MustInsert(reldb.String("carol"))

	values, exts, err := orders.ExtPayloads("customer")
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]JoinRecord, len(values))
	for i := range values {
		recs[i] = JoinRecord{Value: values[i], Ext: exts[i]}
	}
	rValues, err := customers.DistinctValues("name")
	if err != nil {
		t.Fatal(err)
	}

	res, _, err := Join(context.Background(), smallCfg(), rValues, recs)
	if err != nil {
		t.Fatal(err)
	}

	// Decode the ext payloads back into rows and count them.
	joinedRows := 0
	for _, m := range res.Matches {
		rows, err := reldb.DecodeRows(m.Ext, orders.Schema().NumColumns())
		if err != nil {
			t.Fatalf("decoding ext for %q: %v", m.Value, err)
		}
		joinedRows += len(rows)
		v, err := reldb.DecodeValue(m.Value)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rows {
			if row[0].AsString() != v.AsString() {
				t.Errorf("ext row for %q carries customer %q", v, row[0])
			}
		}
	}

	// Reference: plaintext join row count (ann×2 + bob×1 = 3).
	ref, err := customers.Join(orders, "name", "customer")
	if err != nil {
		t.Fatal(err)
	}
	if joinedRows != ref.NumRows() {
		t.Errorf("private join reconstructed %d rows, plaintext join has %d", joinedRows, ref.NumRows())
	}
	// eve (S-only) and carol (R-only) must not appear.
	for _, m := range res.Matches {
		v, _ := reldb.DecodeValue(m.Value)
		if v.AsString() == "eve" || v.AsString() == "carol" {
			t.Errorf("non-shared customer %q leaked", v)
		}
	}
}
