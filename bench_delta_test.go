package minshare

// PR9 delta-maintenance benchmark (BENCH_PR9.json): the repeated-query,
// slowly-churning-table regime.  A client re-runs the same intersection
// after the server's table churned 1%; the sender either rebuilds its
// encrypted set from scratch (the S27 cold path: O(|V_S|) modexps) or
// upgrades the cached set by delta (O(churn)).  The standing-push
// variant serves the same churn to an already-subscribed receiver —
// no new session at all.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"minshare/internal/core"
	"minshare/internal/costmodel"
	"minshare/internal/group"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// churnSource is a core.DeltaSource over a sliding window of synthetic
// values: step i serves {v_i, …, v_(i+nS)}, so each Advance inserts
// churn fresh values and deletes the churn oldest — a constant-rate
// churn model with exact, replayable deltas.
type churnSource struct {
	mu      sync.Mutex
	nS      int
	churn   int
	version uint64
	lo      int
	notify  chan struct{}
}

func newChurnSource(nS, churn int) *churnSource {
	return &churnSource{nS: nS, churn: churn, version: 1, notify: make(chan struct{})}
}

func churnValue(i int) []byte { return []byte(fmt.Sprintf("s-%09d", i)) }

// values returns the current window.
func (c *churnSource) values() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, c.nS)
	for i := range out {
		out[i] = churnValue(c.lo + i)
	}
	return out
}

// Advance moves the window one churn step and wakes waiters.
func (c *churnSource) Advance() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lo += c.churn
	c.version++
	close(c.notify)
	c.notify = make(chan struct{})
}

func (c *churnSource) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

func (c *churnSource) DeltaSince(from uint64) (core.SetDelta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	steps := int(c.version - from)
	if from > c.version || steps*c.churn > c.nS {
		return core.SetDelta{}, false
	}
	d := core.SetDelta{From: from, To: c.version}
	oldLo := c.lo - steps*c.churn
	for i := 0; i < steps*c.churn; i++ {
		d.Inserted = append(d.Inserted, core.JoinRecord{Value: churnValue(oldLo + c.nS + i)})
		d.Deleted = append(d.Deleted, churnValue(oldLo+i))
	}
	return d, true
}

func (c *churnSource) Wait(ctx context.Context, from uint64) error {
	for {
		c.mu.Lock()
		if c.version > from {
			c.mu.Unlock()
			return nil
		}
		ch := c.notify
		c.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// deltaBenchSizes picks the acceptance workload (|V_S| = 10k, 1% churn)
// or a smoke-sized one under -short.
func deltaBenchSizes() (nS, churn, nR int) {
	if testing.Short() {
		return 300, 3, 30
	}
	return 10000, 100, 100
}

// receiverQuery builds the repeated client query: half its values are in
// the server's current window, half are not.
func receiverQuery(src *churnSource, nR int) [][]byte {
	cur := src.values()
	vR := make([][]byte, nR)
	for i := range vR {
		if i < nR/2 {
			vR[i] = cur[i*2]
		} else {
			vR[i] = []byte(fmt.Sprintf("r-%09d", i))
		}
	}
	return vR
}

// benchmarkDeltaRequery measures one mutate-then-requery round: the
// table churns one step, then the client re-runs its intersection.
// With upgrade=false the sender's cached set is stale and unusable (no
// delta source), so every round pays the 2|V_S| cold rebuild; with
// upgrade=true the delta-upgrade path re-encrypts only the churn.
func benchmarkDeltaRequery(b *testing.B, upgrade bool) {
	nS, churn, nR := deltaBenchSizes()
	src := newChurnSource(nS, churn)
	g := group.EC25519()
	reg := obs.NewRegistry()
	cache := core.NewSenderSetCache(0, reg.Cache())
	cfgR := core.Config{Group: g}

	runOnce := func() {
		cfgS := core.Config{Group: g, SetCache: cache, DataVersion: src.Version(), CacheKey: core.SetCacheKey{
			PeerHost: "bench-peer", Table: "t", Version: src.Version(), Protocol: wire.ProtoIntersection,
		}}
		if upgrade {
			cfgS.DeltaSource = src
		}
		ctx := context.Background()
		connR, connS := transport.Pipe()
		defer connR.Close()
		ch := make(chan error, 1)
		go func() {
			_, err := core.IntersectionSender(ctx, cfgS, connS, src.values())
			ch <- err
		}()
		res, err := core.IntersectionReceiver(ctx, cfgR, connR, receiverQuery(src, nR))
		if err != nil {
			b.Fatal(err)
		}
		if err := <-ch; err != nil {
			b.Fatal(err)
		}
		if len(res.Values) != nR/2 {
			b.Fatalf("|intersection| = %d, want %d", len(res.Values), nR/2)
		}
	}

	runOnce() // populate the slot's cache entry, untimed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		src.Advance() // the 1% churn between queries is the table's cost, not the protocol's
		b.StartTimer()
		runOnce()
	}
	b.StopTimer()
	b.ReportMetric(float64(costmodel.IntersectionOps(nS, nR).Ce), "Ce-cold")
	b.ReportMetric(float64(costmodel.IntersectionDeltaOps(nS, nR, churn, churn).Ce), "Ce-upgrade")
	snap := reg.Cache().Snapshot()
	if upgrade && snap.Upgrades < int64(b.N) {
		b.Fatalf("upgrade path not exercised: %d upgrades over %d rounds", snap.Upgrades, b.N)
	}
	if !upgrade && snap.Upgrades != 0 {
		b.Fatalf("cold variant unexpectedly upgraded %d times", snap.Upgrades)
	}
}

// benchmarkDeltaStandingPush measures the same churn served to a
// standing subscriber: one Advance, one pushed SubUpdate, one applied
// result — no session setup, no O(|V_S|) work anywhere.
func benchmarkDeltaStandingPush(b *testing.B) {
	nS, churn, nR := deltaBenchSizes()
	src := newChurnSource(nS, churn)
	g := group.EC25519()
	cfgS := core.Config{Group: g, DeltaSource: src, DataVersion: src.Version()}
	cfgR := core.Config{Group: g}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	connR, connS := transport.Pipe()
	defer connR.Close()
	ch := make(chan error, 1)
	go func() {
		_, err := core.IntersectionSenderStanding(ctx, cfgS, connS, src.values())
		ch <- err
	}()
	q, err := core.IntersectionReceiverStanding(ctx, cfgR, connR, receiverQuery(src, nR))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Advance()
		if _, err := q.Await(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := q.Close(ctx); err != nil {
		b.Fatal(err)
	}
	connR.Close()
	<-ch
}

func BenchmarkDeltaRequery(b *testing.B) {
	b.Run("cold", func(b *testing.B) { benchmarkDeltaRequery(b, false) })
	b.Run("upgrade", func(b *testing.B) { benchmarkDeltaRequery(b, true) })
	b.Run("standing-push", benchmarkDeltaStandingPush)
}
