package minshare

// Full-stack integration tests: CSV-loaded tables, the party server over
// real TCP, every protocol exercised by a remote client, and the SQL
// front end cross-checked against plaintext evaluation.

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/leakage"
	"minshare/internal/party"
	"minshare/internal/query"
	"minshare/internal/reldb"
	"minshare/internal/transport"
)

const ordersCSV = `cust:string,item:string,amount:int
ann,widget,120
ann,sprocket,75
bob,gizmo,300
eve,contraband,9999
`

func TestIntegrationServerFromCSV(t *testing.T) {
	// Enterprise S: load its table from CSV and serve it.
	table, err := reldb.ReadCSV("orders", strings.NewReader(ordersCSV))
	if err != nil {
		t.Fatal(err)
	}
	values, err := table.DistinctValues("cust")
	if err != nil {
		t.Fatal(err)
	}
	multiset, err := table.ColumnValues("cust")
	if err != nil {
		t.Fatal(err)
	}
	joinValues, exts, err := table.ExtPayloads("cust")
	if err != nil {
		t.Fatal(err)
	}
	records := make([]core.JoinRecord, len(joinValues))
	for i := range joinValues {
		records[i] = core.JoinRecord{Value: joinValues[i], Ext: exts[i]}
	}

	srv := &party.Server{
		Config:   core.Config{Group: group.TestGroup()},
		Values:   values,
		Records:  records,
		Multiset: multiset,
		Auditor:  leakage.NewAuditor(leakage.AuditPolicy{MaxOverlapFraction: 1}),
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, ln)
	}()

	// Enterprise R: its customer list, queried over TCP.
	client := party.NewClient(ln.Addr().String(), core.Config{Group: group.TestGroup()})
	rQuery := [][]byte{
		reldb.String("ann").Encode(),
		reldb.String("bob").Encode(),
		reldb.String("carol").Encode(),
	}

	// Intersection: shared customers.
	inter, err := client.Intersect(ctx, rQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(inter.Values) != 2 {
		t.Errorf("intersection = %d values, want 2 (ann, bob)", len(inter.Values))
	}

	// Equijoin: R reconstructs the joined rows.
	join, err := client.Join(ctx, rQuery)
	if err != nil {
		t.Fatal(err)
	}
	totalRows := 0
	for _, m := range join.Matches {
		rows, err := reldb.DecodeRows(m.Ext, table.Schema().NumColumns())
		if err != nil {
			t.Fatal(err)
		}
		totalRows += len(rows)
	}
	if totalRows != 3 { // ann×2 + bob×1
		t.Errorf("joined rows = %d, want 3", totalRows)
	}

	// Intersection size.
	size, err := client.IntersectSize(ctx, rQuery)
	if err != nil {
		t.Fatal(err)
	}
	if size.IntersectionSize != 2 {
		t.Errorf("intersection size = %d", size.IntersectionSize)
	}

	// Join size with R-side duplicates.
	js, err := client.JoinSize(ctx, [][]byte{
		reldb.String("ann").Encode(),
		reldb.String("ann").Encode(),
		reldb.String("bob").Encode(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if js.JoinSize != 2*2+1*1 { // ann: 2 R-dups × 2 S-rows; bob: 1×1
		t.Errorf("join size = %d, want 5", js.JoinSize)
	}

	// The audit trail recorded all four sessions.
	if got := len(srv.Auditor.Trail()); got != 4 {
		t.Errorf("audit trail has %d entries, want 4", got)
	}
	cancel()
	ln.Close()
	<-done
}

// TestIntegrationSQLAgainstPlaintext fuzzes the SQL executor against
// plaintext evaluation over generated workloads.
func TestIntegrationSQLAgainstPlaintext(t *testing.T) {
	cfg := Config{Group: group.TestGroup()}
	for seed := int64(1); seed <= 3; seed++ {
		tR := reldb.GenKeyedTable("left", 25, 12, seed)
		tS := reldb.GenKeyedTable("right", 30, 12, seed+100)

		q, err := query.Parse("select count(*) from left, right where left.key = right.key")
		if err != nil {
			t.Fatal(err)
		}
		res, err := query.Execute(context.Background(), cfg, cfg, cfg, q, tR, tS)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := tR.Join(tS, "key", "key")
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != ref.NumRows() {
			t.Errorf("seed %d: private COUNT(*) = %d, plaintext = %d", seed, res.Count, ref.NumRows())
		}
	}
}

// TestIntegrationAllGroupSizes smoke-tests the intersection protocol on
// every builtin modulus, catching size-dependent encoding bugs.
func TestIntegrationAllGroupSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, size := range group.BuiltinSizes() {
		size := size
		t.Run(group.MustBuiltin(size).String(), func(t *testing.T) {
			cfg := Config{Group: group.MustBuiltin(size)}
			res, _, err := Intersect(context.Background(), cfg,
				bs("x", "y", "z"), bs("y", "z", "w"))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Values) != 2 {
				t.Errorf("intersection = %d", len(res.Values))
			}
		})
	}
}

// TestIntegrationPartyOverTLS runs the party server behind a TLS
// listener with certificate pinning — the complete Figure 1 stack:
// database (reldb) + cryptographic protocol (core) + secure
// communication (TLS).
func TestIntegrationPartyOverTLS(t *testing.T) {
	serverCert, err := transport.GenerateSelfSignedCert([]string{"127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := transport.PinnedPool(serverCert)
	if err != nil {
		t.Fatal(err)
	}

	srv := &party.Server{
		Config: core.Config{Group: group.TestGroup()},
		Values: [][]byte{[]byte("a"), []byte("b"), []byte("c")},
	}
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := transport.NewTLSListener(raw, serverCert, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, ln)
	}()

	client := party.NewClientConnFunc(core.Config{Group: group.TestGroup()},
		func(ctx context.Context) (transport.Conn, error) {
			return transport.DialTLS(ctx, ln.Addr().String(), "127.0.0.1", pool, nil)
		})
	res, err := client.Intersect(ctx, [][]byte{[]byte("b"), []byte("zz")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || string(res.Values[0]) != "b" {
		t.Errorf("TLS intersection = %v", res.Values)
	}
	cancel()
	ln.Close()
	<-done
}
