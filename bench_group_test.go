package minshare

// PR7 group-backend benchmarks (the BENCH_PR7.json numbers): the same
// protocols end to end over each registered commutative-encryption
// backend.  The paper's Section 6.1 analysis prices everything in C_e;
// these benches show what swapping the C_e implementation buys — the
// Curve25519 backend delivers ≥ the security of the 1024-bit safe-prime
// group (~128-bit vs ~80-bit) at a fraction of the per-operation cost,
// so whole protocol runs speed up by the same factor the paper predicts
// from the C_e ratio.  The Montgomery fixed-width ladder that
// accelerates the safe-prime backend itself is measured per-operation
// by BenchmarkMontVsBigExp in internal/group.

import (
	"context"
	"testing"

	"minshare/internal/core"
	"minshare/internal/costmodel"
	"minshare/internal/group"
	"minshare/internal/obs"
	"minshare/internal/transport"
	"minshare/internal/wire"
)

// benchBackends are the backends the cross-backend benches compare: the
// paper's own parameters (1024-bit safe prime) against the EC backend
// at equivalent-or-better security.
func benchBackends() []group.Backend {
	return []group.Backend{group.MustBuiltin(group.Bits1024), group.EC25519()}
}

func benchmarkBackendIntersection(b *testing.B, be group.Backend, n int) {
	vR, vS := benchSets(n)
	cfg := core.Config{Group: be}
	b.ReportMetric(float64(costmodel.IntersectionOps(n, n).Ce), "Ce-ops")
	var snap obs.CounterSnapshot
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, snap = runPairBench(b,
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionReceiver(ctx, cfg, conn, vR)
				return err
			},
			func(ctx context.Context, conn transport.Conn) error {
				_, err := core.IntersectionSender(ctx, cfg, conn, vS)
				return err
			})
	}
	b.ReportMetric(float64(snap.ModExps()), "Ce-observed")
}

// BenchmarkGroupBackendIntersection is the headline PR7 number: the full
// intersection protocol, same sets, per backend.  The observed C_e
// census (modexps for QR, scalar mults for EC — the counters are
// backend-agnostic) is identical across backends; only the cost of one
// C_e changes.
func BenchmarkGroupBackendIntersection(b *testing.B) {
	n := 128
	if testing.Short() {
		n = 8
	}
	for _, be := range benchBackends() {
		b.Run(be.Name(), func(b *testing.B) { benchmarkBackendIntersection(b, be, n) })
	}
}

// BenchmarkGroupBackendEquijoin runs the equijoin (2n_S + 5n_R C_e plus
// n_S + shared K-encryptions) per backend; the hybrid K cipher prices
// its header at the backend's element width.
func BenchmarkGroupBackendEquijoin(b *testing.B) {
	n := 64
	if testing.Short() {
		n = 8
	}
	for _, be := range benchBackends() {
		b.Run(be.Name(), func(b *testing.B) {
			vR, vS := benchSets(n)
			recs := make([]core.JoinRecord, len(vS))
			for i, v := range vS {
				recs[i] = core.JoinRecord{Value: v, Ext: []byte("payload for " + string(v))}
			}
			cfg := core.Config{Group: be}
			b.ReportMetric(float64(costmodel.JoinOps(n, n, n/2).Ce), "Ce-ops")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runPairBench(b,
					func(ctx context.Context, conn transport.Conn) error {
						_, err := core.EquijoinReceiver(ctx, cfg, conn, vR)
						return err
					},
					func(ctx context.Context, conn transport.Conn) error {
						_, err := core.EquijoinSender(ctx, cfg, conn, recs)
						return err
					})
			}
		})
	}
}

// BenchmarkGroupBackendEquijoinWarm replays the S27 encrypted-set cache
// per backend: the sender's bulk C_e work disappears on warm runs for
// both backends, and the cache's byte accounting (32-byte EC points vs
// word-aligned big.Int storage) keeps the same LRU budget honest.
func BenchmarkGroupBackendEquijoinWarm(b *testing.B) {
	nS, nR := 1000, 100
	if testing.Short() {
		nS, nR = 32, 8
	}
	for _, be := range benchBackends() {
		b.Run(be.Name(), func(b *testing.B) {
			vR, recs := cacheBenchSets(nS, nR)
			cache := core.NewSenderSetCache(0, nil)
			cfgS := core.Config{Group: be, SetCache: cache, CacheKey: core.SetCacheKey{
				PeerHost: "bench-peer", Table: "t", Version: 1, Protocol: wire.ProtoEquijoin,
			}}
			cfgR := core.Config{Group: be}
			runOnce := func() {
				ctx := context.Background()
				connR, connS := transport.Pipe()
				defer connR.Close()
				ch := make(chan error, 1)
				go func() {
					_, err := core.EquijoinSender(ctx, cfgS, connS, recs)
					ch <- err
				}()
				res, err := core.EquijoinReceiver(ctx, cfgR, connR, vR)
				if err != nil {
					b.Fatal(err)
				}
				if err := <-ch; err != nil {
					b.Fatal(err)
				}
				if len(res.Matches) != nR/2 {
					b.Fatalf("matches = %d, want %d", len(res.Matches), nR/2)
				}
			}
			b.ReportMetric(float64(costmodel.JoinOpsWarm(nS, nR, nR/2).Ce), "Ce-warm")
			runOnce() // populate, untimed
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runOnce()
			}
		})
	}
}

// BenchmarkGroupBackendCe is the per-operation C_e comparison the
// end-to-end ratios reduce to: one Apply per backend over a mapped
// element.
func BenchmarkGroupBackendCe(b *testing.B) {
	for _, be := range benchBackends() {
		b.Run(be.Name(), func(b *testing.B) {
			uniform := make([]byte, be.HashInputLen())
			for i := range uniform {
				uniform[i] = byte(i*37 + 11)
			}
			x := be.MapToElement(uniform)
			e, err := be.RandomScalar(nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := be.Apply(e, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupBackendHash compares the other oracle half: hash-to-QR
// (one squaring after an XOF expansion sized to the modulus) vs
// hash-to-curve (Elligator2 + cofactor clearing over 64 XOF bytes).
func BenchmarkGroupBackendHash(b *testing.B) {
	for _, be := range benchBackends() {
		b.Run(be.Name(), func(b *testing.B) {
			uniform := make([]byte, be.HashInputLen())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				uniform[0], uniform[1] = byte(i), byte(i>>8)
				_ = be.MapToElement(uniform)
			}
		})
	}
}
