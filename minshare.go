// Package minshare implements minimal-information sharing across private
// databases, reproducing Agrawal, Evfimievski & Srikant, "Information
// Sharing Across Private Databases" (SIGMOD 2003).
//
// Two parties — S (sender) and R (receiver) — hold private value sets.
// Built on commutative encryption over quadratic residues modulo a safe
// prime, the library computes, with semi-honest security:
//
//   - Intersection:      R learns V_S ∩ V_R and |V_S|; S learns |V_R|.
//   - Equijoin:          R additionally learns ext(v) — S's records for
//     each joined value.
//   - Intersection size: R learns only |V_S ∩ V_R| and |V_S|.
//   - Equijoin size:     multiset join cardinality (leaks duplicate
//     distributions, as characterized in the paper's Section 5.2).
//
// This package is the convenience facade.  Each protocol is exposed two
// ways: role functions (re-exported from internal/core) that drive one
// endpoint of a transport for real two-machine deployments, and local
// two-goroutine runners (Intersect, Join, IntersectSize, JoinSize) for
// in-process use, tests and experiments.
//
// The repository also contains the paper's two motivating applications
// (internal/docshare, internal/medical), the Appendix A garbled-circuit
// baseline (internal/yao and friends), and an experiment harness
// (cmd/experiments) regenerating every quantitative result in the paper.
package minshare

import (
	"context"
	"fmt"

	"minshare/internal/core"
	"minshare/internal/group"
	"minshare/internal/transport"
)

// Config carries the cryptographic setup shared by both parties of a
// protocol run.  The zero value selects the 1024-bit builtin group, the
// Pohlig-Hellman power function, SHA-256-based hashing, the hybrid
// payload cipher and crypto/rand.
type Config = core.Config

// Re-exported result types.
type (
	// IntersectionResult is what R learns from Intersection.
	IntersectionResult = core.IntersectionResult
	// JoinResult is what R learns from Equijoin.
	JoinResult = core.JoinResult
	// JoinRecord is S's per-value input to Equijoin.
	JoinRecord = core.JoinRecord
	// JoinMatch is one joined value with its ext payload.
	JoinMatch = core.JoinMatch
	// SizeResult is what R learns from IntersectionSize.
	SizeResult = core.SizeResult
	// JoinSizeResult is what R learns from EquijoinSize.
	JoinSizeResult = core.JoinSizeResult
	// SenderInfo is what S learns from a set protocol.
	SenderInfo = core.SenderInfo
	// JoinSizeSenderInfo is what S learns from EquijoinSize.
	JoinSizeSenderInfo = core.JoinSizeSenderInfo
	// Conn is the frame transport both role endpoints drive.
	Conn = transport.Conn
)

// Role functions for networked deployments (see transport.Dial and
// transport.NewTCP for connecting two machines).
var (
	// IntersectionReceiver runs party R of the Section 3.3 protocol.
	IntersectionReceiver = core.IntersectionReceiver
	// IntersectionSender runs party S of the Section 3.3 protocol.
	IntersectionSender = core.IntersectionSender
	// EquijoinReceiver runs party R of the Section 4.3 protocol.
	EquijoinReceiver = core.EquijoinReceiver
	// EquijoinSender runs party S of the Section 4.3 protocol.
	EquijoinSender = core.EquijoinSender
	// IntersectionSizeReceiver runs party R of the Section 5.1 protocol.
	IntersectionSizeReceiver = core.IntersectionSizeReceiver
	// IntersectionSizeSender runs party S of the Section 5.1 protocol.
	IntersectionSizeSender = core.IntersectionSizeSender
	// EquijoinSizeReceiver runs party R of the Section 5.2 protocol.
	EquijoinSizeReceiver = core.EquijoinSizeReceiver
	// EquijoinSizeSender runs party S of the Section 5.2 protocol.
	EquijoinSizeSender = core.EquijoinSizeSender
)

// Dial connects to a listening peer over TCP and returns a Conn usable
// with the role functions.
func Dial(ctx context.Context, addr string) (Conn, error) {
	return transport.Dial(ctx, "tcp", addr)
}

// Pipe returns two connected in-memory endpoints for in-process runs.
func Pipe() (Conn, Conn) { return transport.Pipe() }

// GroupBits selects a builtin safe-prime group by modulus size for
// Config.Group.  Supported sizes include 256, 512, 768, 1024 (the
// paper's default), 1536 and 2048 bits.
func GroupBits(bits int) (*group.Group, error) {
	return group.Builtin(group.Size(bits))
}

// Intersect runs the full intersection protocol in-process: the receiver
// side over receiverSet and the sender side over senderSet, connected by
// a pipe.  It returns R's result and S's info.
func Intersect(ctx context.Context, cfg Config, receiverSet, senderSet [][]byte) (*IntersectionResult, *SenderInfo, error) {
	var res *IntersectionResult
	info, err := runLocal(ctx,
		func(ctx context.Context, conn Conn) error {
			var err error
			res, err = core.IntersectionReceiver(ctx, cfg, conn, receiverSet)
			return err
		},
		func(ctx context.Context, conn Conn) (*SenderInfo, error) {
			return core.IntersectionSender(ctx, cfg, conn, senderSet)
		})
	if err != nil {
		return nil, nil, err
	}
	return res, info, nil
}

// Join runs the full equijoin protocol in-process.
func Join(ctx context.Context, cfg Config, receiverSet [][]byte, senderRecords []JoinRecord) (*JoinResult, *SenderInfo, error) {
	var res *JoinResult
	info, err := runLocal(ctx,
		func(ctx context.Context, conn Conn) error {
			var err error
			res, err = core.EquijoinReceiver(ctx, cfg, conn, receiverSet)
			return err
		},
		func(ctx context.Context, conn Conn) (*SenderInfo, error) {
			return core.EquijoinSender(ctx, cfg, conn, senderRecords)
		})
	if err != nil {
		return nil, nil, err
	}
	return res, info, nil
}

// IntersectSize runs the full intersection-size protocol in-process.
func IntersectSize(ctx context.Context, cfg Config, receiverSet, senderSet [][]byte) (*SizeResult, *SenderInfo, error) {
	var res *SizeResult
	info, err := runLocal(ctx,
		func(ctx context.Context, conn Conn) error {
			var err error
			res, err = core.IntersectionSizeReceiver(ctx, cfg, conn, receiverSet)
			return err
		},
		func(ctx context.Context, conn Conn) (*SenderInfo, error) {
			return core.IntersectionSizeSender(ctx, cfg, conn, senderSet)
		})
	if err != nil {
		return nil, nil, err
	}
	return res, info, nil
}

// JoinSize runs the full equijoin-size protocol in-process on multisets.
func JoinSize(ctx context.Context, cfg Config, receiverValues, senderValues [][]byte) (*JoinSizeResult, *JoinSizeSenderInfo, error) {
	var res *JoinSizeResult
	info, err := runLocal(ctx,
		func(ctx context.Context, conn Conn) error {
			var err error
			res, err = core.EquijoinSizeReceiver(ctx, cfg, conn, receiverValues)
			return err
		},
		func(ctx context.Context, conn Conn) (*JoinSizeSenderInfo, error) {
			return core.EquijoinSizeSender(ctx, cfg, conn, senderValues)
		})
	if err != nil {
		return nil, nil, err
	}
	return res, info, nil
}

// runLocal wires a receiver closure and a sender closure over a fresh
// pipe, running the sender on its own goroutine.  Note: both closures
// share cfg; when cfg.Rand is a deterministic source it must be safe for
// concurrent use or nil (crypto/rand is).
func runLocal[S any](ctx context.Context,
	recvFn func(ctx context.Context, conn Conn) error,
	sendFn func(ctx context.Context, conn Conn) (S, error),
) (S, error) {
	var zero S
	connR, connS := transport.Pipe()
	defer func() { _ = connR.Close() }()

	type out struct {
		info S
		err  error
	}
	ch := make(chan out, 1)
	go func() {
		info, err := sendFn(ctx, connS)
		if err != nil {
			connS.Close() // lint:ignore errclose closing is the failure signal to the receiver; the root cause travels on ch
		}
		ch <- out{info, err}
	}()
	rErr := recvFn(ctx, connR)
	if rErr != nil {
		connR.Close() // lint:ignore errclose closing is the failure signal to the sender goroutine; rErr carries the root cause
	}
	sOut := <-ch
	if rErr != nil {
		return zero, fmt.Errorf("minshare: receiver: %w", rErr)
	}
	if sOut.err != nil {
		return zero, fmt.Errorf("minshare: sender: %w", sOut.err)
	}
	return sOut.info, nil
}
