# Developer entry points.  `make check` is what CI should run: a full
# build, the whole test suite, go vet, and the race detector over the
# concurrency-heavy packages (the protocol core, the observability
# counters, and the transport decorators).

GO ?= go

.PHONY: all build test vet race check bench experiments

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/core ./internal/obs ./internal/transport

check: build vet test race

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

experiments:
	$(GO) run ./cmd/experiments -exp all -quick -group 256
