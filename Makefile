# Developer entry points.  `make check` is what CI runs: a full build,
# the whole test suite, go vet, the race detector over the
# concurrency-heavy packages (the protocol core, the observability
# counters, the transport decorators, and the party server), and the
# protocol-safety lint suite (which subsumes the documentation checks).

GO ?= go

.PHONY: all build test vet race race-faults docs-check docs-drift lint lint-fix-audit check bench bench-pipeline bench-cache bench-obs bench-obs-smoke bench-group bench-group-smoke bench-shard bench-shard-smoke bench-delta bench-delta-smoke experiments

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# structtag and copylocks are called out explicitly (though both are in
# vet's default set) because the lifecycle configs (party.Timeouts,
# party.Retry, obs.Lifecycle) lean on struct tags and must never be
# copied once their atomics are live.
vet:
	$(GO) vet ./...
	$(GO) vet -structtag -copylocks ./internal/party ./internal/transport ./internal/obs

race:
	$(GO) test -race ./internal/core ./internal/obs ./internal/transport ./internal/commutative ./internal/party

# The session-lifecycle fault suite (stalled peers, accept-error storms,
# drain under load, client retry) under the race detector, time-bounded
# so a reintroduced leak or deadlock fails fast instead of hanging CI.
race-faults:
	$(GO) test -race -timeout 120s \
		-run 'Stalled|Staller|AcceptError|Drain|Saturation|Timeout|Retry|Retries|Cancellation' \
		./internal/party ./internal/transport ./internal/core ./internal/commutative

# Documentation lint: every exported identifier in internal/* must have
# a doc comment (field-deep in group/ec25519/transport), every
# intra-repo link in the *.md files must resolve, and the benchmark
# history must match the committed records.
docs-check:
	$(GO) run ./cmd/docscheck

# Benchmark-record drift alone: fails when EXPERIMENTS.md's
# benchmark-history table and the BENCH_*.json files disagree — a row
# without a record, a record without a row, or a record missing its
# reproduction fields.
docs-drift:
	$(GO) run ./cmd/docscheck -drift

# Protocol-safety static analysis (internal/analysis): secretlog,
# bigintalias, ctxflow, errclose, spanpair, the interprocedural leakflow
# taint proof and the wirekind dispatch-exhaustiveness check over the
# whole module, with the documentation checks folded into the same exit
# code.  -summary appends the per-analyzer findings/elapsed table; use
# `go run ./cmd/psilint -why file:line` to see the source→sink chain
# behind a leakflow finding.
lint:
	$(GO) run ./cmd/psilint -summary ./...

# Inventory of every `lint:ignore` escape hatch in the tree, with the
# mandatory reasons — review this when auditing suppressions.
lint-fix-audit:
	$(GO) run ./cmd/psilint -audit ./...

# Observability-overhead benchmark (the BENCH_PR6.json numbers): the
# same intersection with the endpoints detached (no obs session — the
# instrumentation must collapse to nil checks) vs attached (sessions,
# spans, latency histograms, flight recorder), plus the operation-level
# costs of the detached span path and one histogram record.
bench-obs:
	$(GO) test -run xxx -bench ObsOverhead -benchtime 3x .

# Short-mode smoke of the same benches (tiny sets, one iteration) so a
# regression that breaks the instrumented or detached path fails check.
bench-obs-smoke:
	$(GO) test -short -run xxx -bench ObsOverhead -benchtime 1x .

# Group-backend benchmark (the BENCH_PR7.json numbers): the same
# protocols end to end over each commutative-encryption backend —
# qr1024 (the paper's parameters) vs ec25519 — plus the per-operation
# C_e and hash-to-element costs, and the Montgomery-vs-big.Int modexp
# comparison that certifies the fixed-width gate.
bench-group:
	$(GO) test -run xxx -bench GroupBackend -benchtime 3x .
	$(GO) test -run xxx -bench MontVsBigExp -benchtime 50x ./internal/group

# Short-mode smoke of the backend benches (tiny sets, one iteration):
# a regression that breaks a backend's protocol path or the Montgomery
# ladder fails check.
bench-group-smoke:
	$(GO) test -short -run xxx -bench GroupBackend -benchtime 1x .
	$(GO) test -run xxx -bench MontVsBigExp -benchtime 1x ./internal/group

# Shard-parallel benchmark (the BENCH_PR8.json numbers): the same
# intersection over a modelled 4.5 Mbit/s link, classic single session
# (k=1) vs eight multiplexed shards (k=8), with the certified-closed-form
# wall estimates reported alongside; `experiments -exp E12` prints the
# paper-scale (|V|=1M, P=8) projection table.
bench-shard:
	$(GO) test -run xxx -bench IntersectionSharded -benchtime 3x .

# Short-mode smoke of the sharded bench (tiny sets, fast link, one
# iteration): a regression in the mux, the coordinator, or the k=1
# classic path fails check.
bench-shard-smoke:
	$(GO) test -short -run xxx -bench IntersectionSharded -benchtime 1x .

# Delta-maintenance benchmark (the BENCH_PR9.json numbers): a 1%-churn
# requery answered by the cache delta-upgrade path vs the S27 cold
# rebuild at |V_S| = 10k over ec25519, plus the standing-query push
# serving the same churn to a subscriber.
bench-delta:
	$(GO) test -run xxx -bench DeltaRequery -benchtime 3x -timeout 30m .

# Short-mode smoke of the delta bench (tiny set, one iteration): a
# regression in ApplyDelta, the upgrade path, or the subscription pump
# fails check.
bench-delta-smoke:
	$(GO) test -short -run xxx -bench DeltaRequery -benchtime 1x .

check: build vet test race race-faults lint docs-drift bench-obs-smoke bench-group-smoke bench-shard-smoke bench-delta-smoke

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Streaming-pipeline benchmark only (the BENCH_PR2.json numbers):
# legacy vs ChunkSize>0 intersection over a modelled T1 link at several
# RTTs.
bench-pipeline:
	$(GO) test -run xxx -bench IntersectionPipelined -benchtime 1x .

# Encrypted-set cache benchmark only (the BENCH_PR4.json numbers):
# the same equijoin with the sender recomputing its encrypted table
# every run (cold) vs replaying it from the cache (warm).
bench-cache:
	$(GO) test -run xxx -bench EquijoinCache -benchtime 1x .

experiments:
	$(GO) run ./cmd/experiments -exp all -quick -group 256
