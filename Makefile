# Developer entry points.  `make check` is what CI should run: a full
# build, the whole test suite, go vet, and the race detector over the
# concurrency-heavy packages (the protocol core, the observability
# counters, the transport decorators, and the party server).

GO ?= go

.PHONY: all build test vet race race-faults check bench bench-pipeline experiments

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# structtag and copylocks are called out explicitly (though both are in
# vet's default set) because the lifecycle configs (party.Timeouts,
# party.Retry, obs.Lifecycle) lean on struct tags and must never be
# copied once their atomics are live.
vet:
	$(GO) vet ./...
	$(GO) vet -structtag -copylocks ./internal/party ./internal/transport ./internal/obs

race:
	$(GO) test -race ./internal/core ./internal/obs ./internal/transport ./internal/commutative ./internal/party

# The session-lifecycle fault suite (stalled peers, accept-error storms,
# drain under load, client retry) under the race detector, time-bounded
# so a reintroduced leak or deadlock fails fast instead of hanging CI.
race-faults:
	$(GO) test -race -timeout 120s \
		-run 'Stalled|Staller|AcceptError|Drain|Saturation|Timeout|Retry|Retries|Cancellation' \
		./internal/party ./internal/transport ./internal/core ./internal/commutative

check: build vet test race race-faults

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Streaming-pipeline benchmark only (the BENCH_PR2.json numbers):
# legacy vs ChunkSize>0 intersection over a modelled T1 link at several
# RTTs.
bench-pipeline:
	$(GO) test -run xxx -bench IntersectionPipelined -benchtime 1x .

experiments:
	$(GO) run ./cmd/experiments -exp all -quick -group 256
