# Developer entry points.  `make check` is what CI should run: a full
# build, the whole test suite, go vet, and the race detector over the
# concurrency-heavy packages (the protocol core, the observability
# counters, and the transport decorators).

GO ?= go

.PHONY: all build test vet race check bench bench-pipeline experiments

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/core ./internal/obs ./internal/transport ./internal/commutative

check: build vet test race

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Streaming-pipeline benchmark only (the BENCH_PR2.json numbers):
# legacy vs ChunkSize>0 intersection over a modelled T1 link at several
# RTTs.
bench-pipeline:
	$(GO) test -run xxx -bench IntersectionPipelined -benchtime 1x .

experiments:
	$(GO) run ./cmd/experiments -exp all -quick -group 256
